// Section 7.3: U-Filter on the (synthetic) Protein Sequence Database —
// non-well-nested views and the SET NULL delete policy.
#include <gtest/gtest.h>

#include "fixtures/psd.h"
#include "ufilter/checker.h"
#include "ufilter/xml_apply.h"
#include "view/diff.h"
#include "xquery/parser.h"

namespace ufilter {
namespace {

using check::CheckOutcome;
using check::CheckReport;
using check::Translatability;
using check::UFilter;
using relational::DeletePolicy;

TEST(PsdTest, KeywordViewIsNotWellNestedYetChecksFine) {
  auto db = fixtures::MakePsdDatabase();
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::PsdKeywordViewQuery());
  ASSERT_TRUE(uf.ok()) << uf.status().ToString();
  // Deleting a protein-under-keyword is conditionally translatable: the
  // protein tuple is shared across keywords (dirty), but a clean source
  // (the annotation tuple) exists.
  CheckReport r = (*uf)->Check(
      "FOR $keyword IN document(\"v\")/keyword, $protein IN "
      "$keyword/protein WHERE $keyword/kid/text() = \"K01\" AND "
      "$protein/pid/text() = \"P001\" UPDATE $keyword { DELETE $protein }");
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(r.star_class, Translatability::kConditionallyTranslatable);
  // The annotation A1 is gone; protein P001 survives (still under K02).
  EXPECT_EQ((*(*db)->GetTable("annotation"))->live_row_count(), 4u);
  EXPECT_EQ((*(*db)->GetTable("protein"))->live_row_count(), 3u);
}

TEST(PsdTest, RectangleRuleOnNonWellNestedDelete) {
  auto db = fixtures::MakePsdDatabase();
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::PsdKeywordViewQuery());
  ASSERT_TRUE(uf.ok());
  auto stmt = xq::ParseUpdate(
      "FOR $keyword IN document(\"v\")/keyword, $protein IN "
      "$keyword/protein WHERE $keyword/kid/text() = \"K02\" AND "
      "$protein/pid/text() = \"P002\" UPDATE $keyword { DELETE $protein }");
  ASSERT_TRUE(stmt.ok());
  auto expected = (*uf)->MaterializeView();
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(check::ApplyUpdateToXml(expected->get(), *stmt).ok());
  CheckReport r = (*uf)->CheckParsed(*stmt);
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  auto actual = (*uf)->MaterializeView();
  ASSERT_TRUE(actual.ok());
  auto diff = view::FirstDifference(**expected, **actual);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(PsdTest, ProteinDeleteUnderSetNullKeepsReferencesAlive) {
  auto db = fixtures::MakePsdDatabase(DeletePolicy::kSetNull);
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::PsdProteinViewQuery());
  ASSERT_TRUE(uf.ok());
  CheckReport r = (*uf)->Check(
      "FOR $root IN document(\"v\"), $protein = $root/protein WHERE "
      "$protein/pid/text() = \"P003\" UPDATE $root { DELETE $protein }");
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ((*(*db)->GetTable("protein"))->live_row_count(), 2u);
  // P003 has no references; but the policy matters for P001-style deletes:
  CheckReport r2 = (*uf)->Check(
      "FOR $root IN document(\"v\"), $protein = $root/protein WHERE "
      "$protein/pid/text() = \"P001\" UPDATE $root { DELETE $protein }");
  ASSERT_EQ(r2.outcome, CheckOutcome::kExecuted) << r2.Describe();
  // References survive with NULLed pid under SET NULL.
  EXPECT_EQ((*(*db)->GetTable("reference"))->live_row_count(), 3u);
}

TEST(PsdTest, ProteinDeleteUnderCascadeRemovesReferences) {
  auto db = fixtures::MakePsdDatabase(DeletePolicy::kCascade);
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::PsdProteinViewQuery());
  ASSERT_TRUE(uf.ok());
  CheckReport r = (*uf)->Check(
      "FOR $root IN document(\"v\"), $protein = $root/protein WHERE "
      "$protein/pid/text() = \"P001\" UPDATE $root { DELETE $protein }");
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  // P001's two references cascade away.
  EXPECT_EQ((*(*db)->GetTable("reference"))->live_row_count(), 1u);
}

TEST(PsdTest, RestrictPolicySurfacesEngineError) {
  auto db = fixtures::MakePsdDatabase(DeletePolicy::kRestrict);
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::PsdProteinViewQuery());
  ASSERT_TRUE(uf.ok());
  CheckReport r = (*uf)->Check(
      "FOR $root IN document(\"v\"), $protein = $root/protein WHERE "
      "$protein/pid/text() = \"P001\" UPDATE $root { DELETE $protein }");
  // The engine refuses (referenced by reference/annotation); U-Filter
  // reports the data-level conflict and leaves the database unchanged.
  EXPECT_EQ(r.outcome, CheckOutcome::kDataConflict) << r.Describe();
  EXPECT_EQ((*(*db)->GetTable("protein"))->live_row_count(), 3u);
}

TEST(PsdTest, KeywordInsertIntoExistingProtein) {
  auto db = fixtures::MakePsdDatabase();
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::PsdKeywordViewQuery());
  ASSERT_TRUE(uf.ok());
  // Attach protein P003 to keyword K01 (new annotation).
  CheckReport r = (*uf)->Check(
      "FOR $keyword IN document(\"v\")/keyword WHERE $keyword/kid/text() = "
      "\"K01\" UPDATE $keyword { INSERT <protein><pid>P003</pid>"
      "<name>Lysozyme C</name><annotation><aid>A9</aid>"
      "<note>new link</note></annotation></protein> }");
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ((*(*db)->GetTable("annotation"))->live_row_count(), 6u);
  // Protein P003 was reused, not duplicated.
  EXPECT_EQ((*(*db)->GetTable("protein"))->live_row_count(), 3u);
}

}  // namespace
}  // namespace ufilter
