// Randomized interleaving fuzz of the MVCC snapshot path: N reader
// sessions run check-only verdicts against pinned snapshots while a writer
// concurrently applies translated updates (value replacements) through the
// writer-lane protocol. Every reader records its pinned snapshot and its
// live verdict; after the storm, each check is replayed single-threadedly
// against the *same* pinned snapshot and must reproduce the identical
// report — concurrent commits must never leak into a pinned check. Extends
// PR 4's verdict-parity harness; runs under TSAN and ASan+UBSan in CI.
// Seed override: UFILTER_FUZZ_SEED (logged, see tests/support/fuzz_seed.h).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "fixtures/synthetic.h"
#include "relational/sqlgen.h"
#include "relational/wal.h"
#include "ufilter/checker.h"

#include "../support/fuzz_seed.h"
#include "../support/temp_dir.h"

namespace ufilter {
namespace {

using check::CheckOptions;
using check::CheckOutcome;
using check::CheckReport;
using check::PreparedUpdate;
using check::UFilter;
using relational::Database;
using relational::ExecutionContext;
using relational::Snapshot;

constexpr int kDepth = 2;
constexpr int kRows = 16;
constexpr int kReaders = 3;
constexpr int kChecksPerReader = 40;
constexpr int kWriterOps = 96;

/// The writer flips leaf values between colors; readers issue deletes whose
/// victim sets depend on those values, so a verdict (rows_affected /
/// zero-tuple warning) is genuinely epoch-sensitive.
const char* kColors[] = {"red", "blue", "green"};

struct RecordedCheck {
  std::shared_ptr<const Snapshot> snapshot;  ///< kept pinned for the replay
  std::string update;
  CheckReport live;   ///< verdict computed while the writer was running
  bool decided = false;
};

std::string DescribeDelta(const CheckReport& a, const CheckReport& b) {
  return "live:   " + a.Describe() + "\nreplay: " + b.Describe();
}

TEST(SnapshotFuzzTest, PinnedVerdictsMatchSingleThreadedReplayAtEpoch) {
  const uint32_t seed =
      test_support::FuzzSeed("snapshot-interleaving", 20260729);

  auto db = fixtures::MakeChainDatabase(kDepth, kRows);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto uf = UFilter::Create(db->get(), fixtures::ChainViewQuery(kDepth));
  ASSERT_TRUE(uf.ok()) << uf.status().ToString();

  // Seed every leaf with a color so value-addressed deletes have victims.
  {
    Database::WriterGuard guard(db->get());
    for (int k = 0; k < kRows; ++k) {
      CheckReport r = (*uf)->Check(
          fixtures::ChainReplaceUpdate(kDepth - 1, k,
                                       kColors[k % 3]));
      ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
    }
  }

  CheckOptions dry;
  dry.apply = false;

  std::mutex writer_lane;
  std::vector<std::vector<RecordedCheck>> recorded(kReaders);

  // Writer: keeps recoloring random leaves through the writer-lane
  // protocol (mutual exclusion + WriterGuard publish), exactly what the
  // service's writer lane does per request.
  std::thread writer([&] {
    std::mt19937 rng(seed);
    for (int i = 0; i < kWriterOps; ++i) {
      int key = static_cast<int>(rng() % kRows);
      const char* color = kColors[rng() % 3];
      std::lock_guard<std::mutex> lane(writer_lane);
      Database::WriterGuard guard(db->get());
      CheckReport r = (*uf)->Check(
          fixtures::ChainReplaceUpdate(kDepth - 1, key, color));
      ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
    }
  });

  // Readers: pin a snapshot, run one check-only verdict with no lock held,
  // record {snapshot, update, verdict}. The snapshot handle stays alive so
  // the replay below runs at exactly the reader's pinned epoch.
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937 rng(seed + 1 + static_cast<uint32_t>(t));
      auto ctx = (*db)->CreateContext();
      for (int i = 0; i < kChecksPerReader; ++i) {
        RecordedCheck rec;
        // Mix value-addressed deletes (epoch-sensitive victim sets) with
        // key-addressed deletes (cascade counts) across levels.
        if (rng() % 2 == 0) {
          rec.update = fixtures::ChainDeleteByValueUpdate(
              kDepth - 1, kColors[rng() % 3]);
        } else {
          rec.update = fixtures::ChainDeleteUpdate(
              static_cast<int>(rng() % kDepth),
              static_cast<int64_t>(rng() % kRows));
        }
        rec.snapshot = (*db)->OpenSnapshot();
        ctx->PinReadSnapshot(rec.snapshot);
        auto plan = (*uf)->Prepare(rec.update, nullptr, ctx.get());
        auto fast = (*uf)->TryCheckReadOnly(*plan, dry, ctx.get());
        ctx->ClearReadSnapshot();
        if (fast.has_value()) {
          rec.live = *fast;
          rec.decided = true;
        }
        recorded[static_cast<size_t>(t)].push_back(std::move(rec));
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // Replay: single-threaded, quiescent database, same pinned snapshot —
  // the verdict must be byte-identical to what the reader computed while
  // the writer was concurrently committing.
  size_t replayed = 0;
  auto replay_ctx = (*db)->CreateContext();
  for (auto& reader_log : recorded) {
    for (RecordedCheck& rec : reader_log) {
      ASSERT_TRUE(rec.decided)
          << "chain deletes must be decidable read-only: " << rec.update;
      replay_ctx->PinReadSnapshot(rec.snapshot);
      auto plan = (*uf)->Prepare(rec.update, nullptr, replay_ctx.get());
      auto replayed_report =
          (*uf)->TryCheckReadOnly(*plan, dry, replay_ctx.get());
      replay_ctx->ClearReadSnapshot();
      ASSERT_TRUE(replayed_report.has_value()) << rec.update;
      EXPECT_EQ(rec.live.outcome, replayed_report->outcome)
          << rec.update << "\n" << DescribeDelta(rec.live, *replayed_report);
      EXPECT_EQ(rec.live.rows_affected, replayed_report->rows_affected)
          << rec.update << "\n" << DescribeDelta(rec.live, *replayed_report);
      EXPECT_EQ(rec.live.zero_tuple_warning,
                replayed_report->zero_tuple_warning)
          << rec.update;
      EXPECT_EQ(rec.live.error.ToString(),
                replayed_report->error.ToString())
          << rec.update;
      EXPECT_EQ(relational::UpdateSequenceToSql(rec.live.translation),
                relational::UpdateSequenceToSql(replayed_report->translation))
          << rec.update;
      ++replayed;
      rec.snapshot.reset();  // unpin as we go
    }
  }
  EXPECT_EQ(replayed,
            static_cast<size_t>(kReaders) * kChecksPerReader);

  // With every pin dropped, epoch GC must have caught up: nothing retained,
  // and the copy-on-write churn actually retired superseded versions.
  relational::EngineStats engine = (*db)->SnapshotWorkCounters();
  EXPECT_EQ((*db)->retained_version_count(), 0u);
  EXPECT_GT(engine.versions_retired, 0u);
  EXPECT_GE(engine.snapshots_opened,
            static_cast<uint64_t>(kReaders) * kChecksPerReader);
  EXPECT_EQ((*db)->oldest_pinned_epoch(), (*db)->commit_epoch());

  // Sanity: the storm really interleaved — the writer advanced the epoch
  // far past the first reader pins.
  EXPECT_GT((*db)->commit_epoch(), static_cast<uint64_t>(kWriterOps) / 2);
}

// The PR 5 storm with the WAL turned on: concurrent snapshot readers while
// a writer commits durable epochs. Afterwards the log must replay to the
// byte-exact live state, group commit must have amortized fsyncs, and the
// check-only traffic must not have appended anything.
TEST(SnapshotFuzzTest, DurableStormRecoversToExactLiveState) {
  const uint32_t seed = test_support::FuzzSeed("snapshot-durable", 4242);
  test_support::TempDir tmp("ufilter_storm");
  ASSERT_TRUE(tmp.ok());

  auto created = Database::Create(fixtures::MakeChainSchema(kDepth));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<Database> db = std::move(*created);
  relational::DurabilityOptions durability;
  durability.wal_path = tmp.path("storm.wal");
  durability.fsync_policy = relational::FsyncPolicy::kGroup;
  durability.group_commit_size = 8;
  ASSERT_TRUE(db->EnableDurability(durability).ok());
  ASSERT_TRUE(fixtures::PopulateChain(db.get(), kDepth, kRows).ok());
  auto uf = UFilter::Create(db.get(), fixtures::ChainViewQuery(kDepth));
  ASSERT_TRUE(uf.ok()) << uf.status().ToString();

  CheckOptions dry;
  dry.apply = false;
  std::mutex writer_lane;
  std::thread writer([&] {
    std::mt19937 rng(seed);
    for (int i = 0; i < kWriterOps; ++i) {
      int key = static_cast<int>(rng() % kRows);
      const char* color = kColors[rng() % 3];
      std::lock_guard<std::mutex> lane(writer_lane);
      Database::WriterGuard guard(db.get());
      CheckReport r = (*uf)->Check(
          fixtures::ChainReplaceUpdate(kDepth - 1, key, color));
      ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937 rng(seed + 1 + static_cast<uint32_t>(t));
      auto ctx = db->CreateContext();
      for (int i = 0; i < kChecksPerReader; ++i) {
        auto snap = db->OpenSnapshot();
        ctx->PinReadSnapshot(snap);
        std::string update = fixtures::ChainDeleteByValueUpdate(
            kDepth - 1, kColors[rng() % 3]);
        auto plan = (*uf)->Prepare(update, nullptr, ctx.get());
        auto fast = (*uf)->TryCheckReadOnly(*plan, dry, ctx.get());
        ctx->ClearReadSnapshot();
        EXPECT_TRUE(fast.has_value());
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  ASSERT_TRUE(db->SyncWal().ok());
  ASSERT_TRUE(db->wal_status().ok());

  // Group commit really batched: far fewer fsyncs than records. (The
  // serial writer lane makes the exact batching timing-dependent, but the
  // bound records >= fsyncs is policy-guaranteed, and with 96+ commits at
  // group size 8 there must be real amortization.)
  relational::EngineStats engine = db->SnapshotWorkCounters();
  EXPECT_GT(engine.wal_records, 0u);
  EXPECT_LT(engine.wal_fsyncs, engine.wal_records)
      << "group commit never amortized an fsync";

  // Byte-exact crash-free recovery of the whole storm.
  Result<std::string> live = db->SerializePublishedState();
  ASSERT_TRUE(live.ok());
  const uint64_t live_epoch = db->commit_epoch();
  auto recovered_db = Database::Create(fixtures::MakeChainSchema(kDepth));
  ASSERT_TRUE(recovered_db.ok());
  ASSERT_TRUE((*recovered_db)->RecoverFrom(durability.wal_path).ok());
  EXPECT_EQ((*recovered_db)->commit_epoch(), live_epoch);
  Result<std::string> replayed = (*recovered_db)->SerializePublishedState();
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, *live)
      << "WAL replay diverged from the live state after the storm";
}

TEST(SnapshotFuzzTest, CheckOnlyStormLeavesDatabaseUntouched) {
  const uint32_t seed = test_support::FuzzSeed("snapshot-checkonly", 7);
  auto db = fixtures::MakeChainDatabase(kDepth, kRows);
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::ChainViewQuery(kDepth));
  ASSERT_TRUE(uf.ok());
  const size_t rows_before = (*db)->TotalRows();
  const uint64_t epoch_before = (*db)->commit_epoch();

  CheckOptions dry;
  dry.apply = false;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937 rng(seed + static_cast<uint32_t>(t));
      auto ctx = (*db)->CreateContext();
      for (int i = 0; i < kChecksPerReader; ++i) {
        auto snap = (*db)->OpenSnapshot();
        ctx->PinReadSnapshot(snap);
        std::string update = fixtures::ChainDeleteUpdate(
            static_cast<int>(rng() % kDepth),
            static_cast<int64_t>(rng() % kRows));
        auto plan = (*uf)->Prepare(update, nullptr, ctx.get());
        auto fast = (*uf)->TryCheckReadOnly(*plan, dry, ctx.get());
        ctx->ClearReadSnapshot();
        EXPECT_TRUE(fast.has_value());
        if (fast.has_value()) {
          EXPECT_EQ(fast->outcome, CheckOutcome::kExecuted)
              << fast->Describe();
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();

  // Pure check-only traffic: no rows changed, no version ever published
  // beyond the first on-demand one, nothing retained or retired.
  EXPECT_EQ((*db)->TotalRows(), rows_before);
  EXPECT_LE((*db)->commit_epoch(), std::max<uint64_t>(epoch_before, 1));
  EXPECT_EQ((*db)->retained_version_count(), 0u);
  EXPECT_EQ((*db)->SnapshotWorkCounters().versions_retired, 0u);
}

}  // namespace
}  // namespace ufilter
