// The concurrent check service: verdict equivalence with the
// single-threaded baseline under N threads x M mixed updates, read-only
// dry-run equivalence across FK delete policies (the validator behind the
// fast path), session isolation (temp tables, undo), writer-lane applies,
// the bounded admission queue, and plan-cache thread safety. Run under
// ThreadSanitizer in CI (zero reported races is an acceptance criterion).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fixtures/bookdb.h"
#include "fixtures/synthetic.h"
#include "relational/dryrun.h"
#include "relational/query.h"
#include "relational/sqlgen.h"
#include "relational/wal.h"
#include "service/bounded_queue.h"
#include "service/check_service.h"

#include "../support/temp_dir.h"

namespace ufilter {
namespace {

using check::CheckOptions;
using check::CheckOutcome;
using check::CheckReport;
using check::UFilter;
using relational::Database;
using relational::DeletePolicy;
using relational::ExecutionContext;
using service::BoundedQueue;
using service::CheckService;
using service::CheckServiceOptions;
using service::CheckServiceStats;
using service::Session;

struct Instance {
  std::unique_ptr<Database> db;
  std::unique_ptr<UFilter> uf;
};

Instance MakeBookInstance() {
  Instance inst;
  auto db = fixtures::MakeBookDatabase();
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  inst.db = std::move(*db);
  auto uf = UFilter::Create(inst.db.get(), fixtures::BookViewQuery());
  EXPECT_TRUE(uf.ok()) << uf.status().ToString();
  inst.uf = std::move(*uf);
  return inst;
}

Instance MakeChainInstance(int depth, int rows,
                           DeletePolicy policy = DeletePolicy::kCascade) {
  Instance inst;
  auto db = fixtures::MakeChainDatabase(depth, rows, policy);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  inst.db = std::move(*db);
  auto uf = UFilter::Create(inst.db.get(), fixtures::ChainViewQuery(depth));
  EXPECT_TRUE(uf.ok()) << uf.status().ToString();
  inst.uf = std::move(*uf);
  return inst;
}

void ExpectSameVerdict(const CheckReport& got, const CheckReport& want,
                       const std::string& label) {
  EXPECT_EQ(got.outcome, want.outcome) << label << ": " << got.Describe();
  EXPECT_EQ(got.error.ToString(), want.error.ToString()) << label;
  EXPECT_EQ(got.star_class, want.star_class) << label;
  EXPECT_EQ(got.rows_affected, want.rows_affected) << label;
  EXPECT_EQ(got.zero_tuple_warning, want.zero_tuple_warning) << label;
  EXPECT_EQ(relational::UpdateSequenceToSql(got.translation),
            relational::UpdateSequenceToSql(want.translation))
      << label;
}

// --- Tentpole: N threads x M mixed updates == single-threaded baseline ----

TEST(ConcurrencyTest, StressVerdictsMatchSingleThreadedBaseline) {
  // Mixed workload over the paper's book database: translatable deletes and
  // replaces, untranslatable updates, data conflicts, parse errors.
  std::vector<std::string> updates;
  for (int u = 1; u <= 13; ++u) updates.push_back(fixtures::PaperUpdate(u));
  updates.push_back("THIS IS NOT AN UPDATE");

  CheckOptions dry;
  dry.apply = false;

  // Single-threaded baseline (check-only, so every repetition agrees).
  Instance baseline = MakeBookInstance();
  std::vector<CheckReport> expected;
  expected.reserve(updates.size());
  for (const std::string& u : updates) {
    expected.push_back(baseline.uf->Check(u, dry));
  }

  Instance inst = MakeBookInstance();
  constexpr int kThreads = 4;
  constexpr int kRounds = 16;
  CheckServiceOptions options;
  options.worker_threads = kThreads;
  CheckService svc(inst.uf.get(), options);

  std::vector<std::shared_ptr<Session>> sessions;
  for (int t = 0; t < kThreads; ++t) sessions.push_back(svc.OpenSession());

  // kThreads submitter threads, each driving its own session, all updates,
  // several rounds — every check runs against the same shared database.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::future<CheckReport>> futures;
        for (size_t i = 0; i < updates.size(); ++i) {
          futures.push_back(svc.Submit(sessions[t], updates[i], dry));
        }
        for (size_t i = 0; i < updates.size(); ++i) {
          CheckReport got = futures[i].get();
          if (got.outcome != expected[i].outcome ||
              got.rows_affected != expected[i].rows_affected ||
              got.error.ToString() != expected[i].error.ToString()) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  CheckServiceStats stats = svc.Snapshot();
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.completed,
            static_cast<uint64_t>(kThreads) * kRounds * updates.size());
  // The dry workload is served overwhelmingly read-only: only the one
  // multi-action template (u13) escalates to the writer lane per round.
  EXPECT_GT(stats.fast_path, stats.writer_lane);
  // The database is untouched by check-only traffic.
  Instance fresh = MakeBookInstance();
  EXPECT_EQ(inst.db->TotalRows(), fresh.db->TotalRows());
}

TEST(ConcurrencyTest, CascadeHeavyDryRunsMatchBaselineThroughService) {
  // Deletes at every level of a cascade chain: the read-only validator must
  // reproduce transitive cascade counts exactly.
  constexpr int kDepth = 3;
  constexpr int kRows = 24;
  std::vector<std::string> updates;
  for (int level = 0; level < kDepth; ++level) {
    for (int key = 0; key < 4; ++key) {
      updates.push_back(fixtures::ChainDeleteUpdate(level, key));
    }
  }
  CheckOptions dry;
  dry.apply = false;

  Instance baseline = MakeChainInstance(kDepth, kRows);
  std::vector<CheckReport> expected;
  for (const std::string& u : updates) {
    expected.push_back(baseline.uf->Check(u, dry));
  }
  // Sanity: the workload really exercises cascades.
  bool saw_cascade = false;
  for (const CheckReport& r : expected) {
    if (r.rows_affected > 1) saw_cascade = true;
  }
  EXPECT_TRUE(saw_cascade);

  Instance inst = MakeChainInstance(kDepth, kRows);
  CheckServiceOptions options;
  options.worker_threads = 2;
  CheckService svc(inst.uf.get(), options);
  auto session = svc.OpenSession();
  std::vector<std::future<CheckReport>> futures;
  for (const std::string& u : updates) {
    futures.push_back(svc.Submit(session, u, dry));
  }
  for (size_t i = 0; i < updates.size(); ++i) {
    ExpectSameVerdict(futures[i].get(), expected[i],
                      "update " + std::to_string(i));
  }
  // Cascade walks are decidable read-only: nothing escalates.
  EXPECT_EQ(svc.Snapshot().writer_lane, 0u);
}

// --- The read-only validator vs. execute-and-rollback, per FK policy ------

CheckReport BaselineDryRun(Instance* inst, const std::string& update) {
  CheckOptions dry;
  dry.apply = false;
  return inst->uf->Check(update, dry);
}

std::optional<CheckReport> ReadOnlyDryRun(Instance* inst,
                                          const std::string& update) {
  CheckOptions dry;
  dry.apply = false;
  auto plan = inst->uf->Prepare(update);
  return inst->uf->TryCheckReadOnly(*plan, dry);
}

TEST(ConcurrencyTest, ReadOnlyCheckMatchesExecuteRollbackUnderRestrict) {
  // Deleting a referenced row under kRestrict: real execution fails with
  // ConstraintViolation at ExecuteOps; the validator must say the same.
  Instance a = MakeChainInstance(3, 8, DeletePolicy::kRestrict);
  Instance b = MakeChainInstance(3, 8, DeletePolicy::kRestrict);
  std::string update = fixtures::ChainDeleteUpdate(0, 1);
  CheckReport baseline = BaselineDryRun(&a, update);
  EXPECT_EQ(baseline.outcome, CheckOutcome::kDataConflict)
      << baseline.Describe();
  auto read_only = ReadOnlyDryRun(&b, update);
  ASSERT_TRUE(read_only.has_value()) << "restrict walk should be decidable";
  ExpectSameVerdict(*read_only, baseline, "restrict delete");
}

TEST(ConcurrencyTest, ReadOnlyCheckMatchesExecuteRollbackUnderSetNull) {
  Instance a = MakeChainInstance(2, 8, DeletePolicy::kSetNull);
  Instance b = MakeChainInstance(2, 8, DeletePolicy::kSetNull);
  std::string update = fixtures::ChainDeleteUpdate(0, 2);
  CheckReport baseline = BaselineDryRun(&a, update);
  auto read_only = ReadOnlyDryRun(&b, update);
  ASSERT_TRUE(read_only.has_value());
  ExpectSameVerdict(*read_only, baseline, "set-null delete");
}

TEST(ConcurrencyTest, ReadOnlyCheckMatchesBaselineOnPaperUpdates) {
  for (int u = 1; u <= 13; ++u) {
    Instance a = MakeBookInstance();
    Instance b = MakeBookInstance();
    CheckReport baseline = BaselineDryRun(&a, fixtures::PaperUpdate(u));
    auto read_only = ReadOnlyDryRun(&b, fixtures::PaperUpdate(u));
    if (!read_only.has_value()) continue;  // escalation is always allowed
    ExpectSameVerdict(*read_only, baseline, "u" + std::to_string(u));
  }
}

TEST(ConcurrencyTest, DryRunOpsValidatesInsertConstraints) {
  // Direct validator checks: unique conflicts, FK existence, and the
  // intra-sequence overlay (insert parent then child).
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  using relational::UpdateOp;
  using relational::UpdateOpKind;
  using ufilter::Value;

  // Duplicate PK on book -> the exact engine failure, zero mutation.
  UpdateOp dup;
  dup.kind = UpdateOpKind::kInsert;
  dup.table = "book";
  dup.values["bookid"] = Value::String("98001");  // exists in the fixture
  dup.values["title"] = Value::String("x");
  size_t rows_before = (*db)->TotalRows();
  auto outcome = relational::DryRunOps(**db, nullptr, {dup});
  ASSERT_TRUE(outcome.decided);
  EXPECT_TRUE(outcome.failure.IsConstraintViolation())
      << outcome.failure.ToString();
  EXPECT_EQ((*db)->TotalRows(), rows_before);

  // Insert publisher then a book referencing it: the overlay supplies the
  // FK target that is not in the database yet.
  UpdateOp pub;
  pub.kind = UpdateOpKind::kInsert;
  pub.table = "publisher";
  pub.values["pubid"] = Value::String("P777");
  pub.values["pubname"] = Value::String("NewPub");
  UpdateOp child;
  child.kind = UpdateOpKind::kInsert;
  child.table = "book";
  child.values["bookid"] = Value::String("77001");
  child.values["title"] = Value::String("t");
  child.values["pubid"] = Value::String("P777");
  outcome = relational::DryRunOps(**db, nullptr, {pub, child});
  ASSERT_TRUE(outcome.decided);
  EXPECT_TRUE(outcome.failure.ok()) << outcome.failure.ToString();
  EXPECT_EQ(outcome.rows_affected, 2);

  // A delete after an insert in the same sequence is beyond the overlay:
  // the validator must punt rather than guess.
  UpdateOp del;
  del.kind = UpdateOpKind::kDelete;
  del.table = "publisher";
  del.where.push_back({"pubid", CompareOp::kEq, Value::String("P777")});
  outcome = relational::DryRunOps(**db, nullptr, {pub, del});
  EXPECT_FALSE(outcome.decided);

  // Same for a find-driven op after an update op on the same table: the
  // rewritten image could newly match predicates the base indexes cannot
  // surface, so the validator punts instead of diverging.
  UpdateOp upd;
  upd.kind = UpdateOpKind::kUpdate;
  upd.table = "publisher";
  upd.values["pubname"] = Value::String("Renamed");
  upd.where.push_back({"pubid", CompareOp::kEq, Value::String("A01")});
  UpdateOp del2;
  del2.kind = UpdateOpKind::kDelete;
  del2.table = "publisher";
  del2.where.push_back(
      {"pubname", CompareOp::kEq, Value::String("Renamed")});
  outcome = relational::DryRunOps(**db, nullptr, {upd, del2});
  EXPECT_FALSE(outcome.decided);
}

TEST(ConcurrencyTest, DryRunAcceptsReinsertAfterSetNullAndDelete) {
  // Regression: delete t0 row (SET-NULLs its t1 child, leaving a stale
  // image in the overlay), delete that child, then re-insert its key. The
  // unique-conflict scan must skip the overlay-deleted child's stale image;
  // real execution accepts this sequence.
  using relational::UpdateOp;
  using relational::UpdateOpKind;
  auto db = fixtures::MakeChainDatabase(2, 8, DeletePolicy::kSetNull);
  ASSERT_TRUE(db.ok());
  UpdateOp del_parent;
  del_parent.kind = UpdateOpKind::kDelete;
  del_parent.table = "t0";
  del_parent.where.push_back({"k0", CompareOp::kEq, Value::Int(2)});
  UpdateOp del_child;
  del_child.kind = UpdateOpKind::kDelete;
  del_child.table = "t1";
  del_child.where.push_back({"k1", CompareOp::kEq, Value::Int(2)});
  UpdateOp reinsert;
  reinsert.kind = UpdateOpKind::kInsert;
  reinsert.table = "t1";
  reinsert.values["k1"] = Value::Int(2);
  reinsert.values["v1"] = Value::String("fresh");
  auto outcome = relational::DryRunOps(
      **db, nullptr, {del_parent, del_child, reinsert});
  ASSERT_TRUE(outcome.decided);
  EXPECT_TRUE(outcome.failure.ok()) << outcome.failure.ToString();
  EXPECT_EQ(outcome.rows_affected, 3);

  // Real execution agrees (execute, then roll back).
  size_t mark = (*db)->Begin();
  ASSERT_TRUE((*db)->DeleteWhere("t0", del_parent.where).ok());
  ASSERT_TRUE((*db)->DeleteWhere("t1", del_child.where).ok());
  EXPECT_TRUE((*db)->InsertValues("t1", reinsert.values).ok());
  (*db)->Rollback(mark);
}

// --- Session isolation ----------------------------------------------------

TEST(ConcurrencyTest, TempTablesAreInvisibleAcrossSessions) {
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto ctx_a = (*db)->CreateContext();
  auto ctx_b = (*db)->CreateContext();

  relational::SelectQuery q;
  q.tables.push_back({"book", "b"});
  q.selects.push_back({"b", "bookid"});
  relational::QueryEvaluator eval_a(db->get(), ctx_a.get());
  ASSERT_TRUE(eval_a.MaterializeInto(q, "TAB_iso").ok());

  // Session A sees its table; session B and the root context do not.
  EXPECT_TRUE((*db)->GetTable(ctx_a.get(), "TAB_iso").ok());
  EXPECT_FALSE((*db)->GetTable(ctx_b.get(), "TAB_iso").ok());
  EXPECT_FALSE((*db)->GetTable("TAB_iso").ok());
  EXPECT_TRUE(ctx_a->IsTempTable("TAB_iso"));
  EXPECT_FALSE(ctx_b->IsTempTable("TAB_iso"));

  // B can create its own table under the same name, with its own shape.
  relational::TableSchema other("TAB_iso");
  other.AddColumn("x", ValueType::kString);
  ASSERT_TRUE(ctx_b->CreateTempTable(other).ok());
  auto a_table = (*db)->GetTable(ctx_a.get(), "TAB_iso");
  auto b_table = (*db)->GetTable(ctx_b.get(), "TAB_iso");
  ASSERT_TRUE(a_table.ok());
  ASSERT_TRUE(b_table.ok());
  EXPECT_NE(*a_table, *b_table);
  EXPECT_EQ((*b_table)->schema().columns().size(), 1u);

  // A query through B's evaluator reads B's table, not A's.
  relational::SelectQuery probe;
  probe.tables.push_back({"TAB_iso", "t"});
  probe.selects.push_back({"t", "x"});
  relational::QueryEvaluator eval_b(db->get(), ctx_b.get());
  auto res = eval_b.Execute(probe);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->empty());

  ASSERT_TRUE(ctx_a->DropTempTable("TAB_iso").ok());
  EXPECT_TRUE(ctx_b->IsTempTable("TAB_iso"));
}

TEST(ConcurrencyTest, UndoLogsAreSessionLocal) {
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto ctx_a = (*db)->CreateContext();
  auto ctx_b = (*db)->CreateContext();
  size_t rows_before = (*db)->TotalRows();

  size_t mark_a = ctx_a->Begin();
  size_t mark_b = ctx_b->Begin();
  ASSERT_TRUE((*db)
                  ->InsertValues(ctx_a.get(), "publisher",
                                 {{"pubid", Value::String("P900")},
                                  {"pubname", Value::String("A")}})
                  .ok());
  ASSERT_TRUE((*db)
                  ->InsertValues(ctx_b.get(), "publisher",
                                 {{"pubid", Value::String("P901")},
                                  {"pubname", Value::String("B")}})
                  .ok());
  EXPECT_EQ(ctx_a->undo_log_size(), 1u);
  EXPECT_EQ(ctx_b->undo_log_size(), 1u);

  // Rolling back A removes only A's insert.
  ctx_a->Rollback(mark_a);
  EXPECT_EQ((*db)->TotalRows(), rows_before + 1);
  ctx_b->Rollback(mark_b);
  EXPECT_EQ((*db)->TotalRows(), rows_before);
}

// --- Writer lane: applies stay serialized and consistent ------------------

TEST(ConcurrencyTest, ConcurrentAppliesMatchSequentialState) {
  constexpr int kDepth = 3;
  constexpr int kRows = 64;
  constexpr int kDeletes = 32;

  // Sequential reference.
  Instance seq = MakeChainInstance(kDepth, kRows);
  for (int k = 0; k < kDeletes; ++k) {
    CheckReport r =
        seq.uf->Check(fixtures::ChainDeleteUpdate(kDepth - 1, k));
    ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  }

  Instance inst = MakeChainInstance(kDepth, kRows);
  CheckServiceOptions options;
  options.worker_threads = 4;
  CheckService svc(inst.uf.get(), options);
  std::vector<std::shared_ptr<Session>> sessions;
  for (int t = 0; t < 4; ++t) sessions.push_back(svc.OpenSession());
  std::vector<std::future<CheckReport>> futures;
  CheckOptions apply;  // defaults: apply=true
  for (int k = 0; k < kDeletes; ++k) {
    futures.push_back(svc.Submit(sessions[static_cast<size_t>(k) % 4],
                                 fixtures::ChainDeleteUpdate(kDepth - 1, k),
                                 apply));
  }
  for (auto& f : futures) {
    CheckReport r = f.get();
    EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  }
  EXPECT_EQ(inst.db->TotalRows(), seq.db->TotalRows());
  // Applies all went through the writer lane.
  EXPECT_GE(svc.Snapshot().writer_lane, static_cast<uint64_t>(kDeletes));
}

// --- Readers never block on the writer lane (MVCC snapshot fast path) -----

TEST(ConcurrencyTest, SnapshotReadersNeverWaitOnAWriterHoldingTheLane) {
  // Fault injection: every writer-lane request holds the lane for 50ms.
  // Check-only traffic runs against pinned snapshots with no lock held, so
  // its latency — and the service's reader-wait counter — must not include
  // the writer's occupancy. (Wall-clock ordering is deliberately not
  // asserted: on a single-core CI runner only the wait-time counters are
  // meaningful; see ISSUE/BENCHMARKS.)
  constexpr int kHoldMs = 50;
  constexpr int kChecks = 24;
  Instance inst = MakeChainInstance(3, 32);
  CheckServiceOptions options;
  options.worker_threads = 4;
  options.writer_lane_hold_ms_for_testing = kHoldMs;
  CheckService svc(inst.uf.get(), options);
  auto writer_session = svc.OpenSession();
  auto reader_session = svc.OpenSession();

  CheckOptions apply;  // defaults: apply=true -> writer lane
  CheckOptions dry;
  dry.apply = false;

  // Start the writer and wait until it actually occupies the lane.
  auto writer_future =
      svc.Submit(writer_session, fixtures::ChainDeleteUpdate(2, 0), apply);
  while (svc.Snapshot().writer_lane == 0) {
    std::this_thread::yield();
  }

  // Concurrent snapshot checks complete while the writer sits on the lane.
  std::vector<std::future<CheckReport>> checks;
  for (int i = 0; i < kChecks; ++i) {
    checks.push_back(svc.Submit(reader_session,
                                fixtures::ChainDeleteUpdate(2, 1 + i % 8),
                                dry));
  }
  for (auto& f : checks) {
    EXPECT_EQ(f.get().outcome, CheckOutcome::kExecuted);
  }
  EXPECT_EQ(writer_future.get().outcome, CheckOutcome::kExecuted);

  CheckServiceStats stats = svc.Snapshot();
  EXPECT_EQ(stats.fast_path, static_cast<uint64_t>(kChecks));
  // The invariant under test: snapshot readers waited on nothing — their
  // only synchronization is the snapshot-open mutex, which the 50ms-writer
  // holds only for the microseconds of its commit publish. Allow half the
  // injected hold as a generous noise bound; blocking readers would cost
  // kHoldMs each.
  EXPECT_LT(stats.reader_wait_ns,
            static_cast<uint64_t>(kHoldMs) * 1000 * 1000 / 2)
      << "snapshot readers must not inherit writer-lane latency";
  EXPECT_GE(stats.snapshots_opened, static_cast<uint64_t>(kChecks));
  EXPECT_GE(stats.commit_epoch, 1u);
  EXPECT_EQ(stats.oldest_pinned_epoch, stats.commit_epoch)
      << "no snapshot may stay pinned after its check completes";
}

TEST(ConcurrencyTest, ConcurrentChecksSurviveAnActiveWriterAndStayParityClean) {
  // Mixed storm: one session keeps applying value replacements (writer
  // lane, new commit epoch each) while reader sessions run check-only
  // deletes whose verdicts are computed against pinned snapshots. Every
  // check must come back executed (the key-addressed victim always exists
  // at every epoch: the writer only recolors values).
  constexpr int kRounds = 12;
  constexpr int kReaderThreads = 3;
  Instance inst = MakeChainInstance(2, 24);
  CheckServiceOptions options;
  options.worker_threads = 4;
  CheckService svc(inst.uf.get(), options);

  auto writer_session = svc.OpenSession();
  CheckOptions apply;
  CheckOptions dry;
  dry.apply = false;

  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  submitters.emplace_back([&] {
    for (int i = 0; i < kRounds * 4; ++i) {
      CheckReport r = svc.Submit(writer_session,
                                 fixtures::ChainReplaceUpdate(
                                     1, i % 24, i % 2 == 0 ? "x" : "y"),
                                 apply)
                          .get();
      if (r.outcome != CheckOutcome::kExecuted) ++failures;
    }
  });
  for (int t = 0; t < kReaderThreads; ++t) {
    submitters.emplace_back([&, t] {
      auto session = svc.OpenSession();
      for (int i = 0; i < kRounds * 8; ++i) {
        CheckReport r = svc.Submit(session,
                                   fixtures::ChainDeleteUpdate(
                                       1, (t * 7 + i) % 24),
                                   dry)
                            .get();
        if (r.outcome != CheckOutcome::kExecuted) ++failures;
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(failures.load(), 0);

  CheckServiceStats stats = svc.Snapshot();
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_GE(stats.writer_lane, static_cast<uint64_t>(kRounds) * 4);
  EXPECT_GE(stats.commit_epoch, static_cast<uint64_t>(kRounds) * 4);
  // Check-only traffic never mutated anything: row counts intact.
  Instance fresh = MakeChainInstance(2, 24);
  EXPECT_EQ(inst.db->TotalRows(), fresh.db->TotalRows());
  // All pins released -> GC caught up.
  EXPECT_EQ(inst.db->retained_version_count(), 0u);
}

TEST(ConcurrencyTest, RolledBackWriterRequestsPublishNoEpoch) {
  // Both escalated check-only requests and *failed* applies execute and
  // roll back — neither may commit a byte-identical epoch, or a stream of
  // conflicting applies turns into clone/publish/GC churn with zero data
  // change.
  Instance inst = MakeChainInstance(2, 8, DeletePolicy::kRestrict);
  CheckServiceOptions options;
  options.worker_threads = 2;
  CheckService svc(inst.uf.get(), options);
  auto session = svc.OpenSession();

  CheckOptions apply;  // defaults: apply=true
  // Deleting a referenced level-0 row under kRestrict fails at execution.
  CheckReport rejected =
      svc.Submit(session, fixtures::ChainDeleteUpdate(0, 1), apply).get();
  ASSERT_EQ(rejected.outcome, CheckOutcome::kDataConflict)
      << rejected.Describe();
  const uint64_t epoch_after_reject = svc.Snapshot().commit_epoch;

  for (int i = 0; i < 8; ++i) {
    CheckReport r =
        svc.Submit(session, fixtures::ChainDeleteUpdate(0, 1), apply).get();
    EXPECT_EQ(r.outcome, CheckOutcome::kDataConflict);
  }
  CheckServiceStats stats = svc.Snapshot();
  EXPECT_EQ(stats.commit_epoch, epoch_after_reject)
      << "rolled-back applies must not publish epochs";

  // A successful apply (leaf level has nothing referencing it) publishes.
  CheckReport ok =
      svc.Submit(session, fixtures::ChainDeleteUpdate(1, 1), apply).get();
  ASSERT_EQ(ok.outcome, CheckOutcome::kExecuted) << ok.Describe();
  EXPECT_GT(svc.Snapshot().commit_epoch, epoch_after_reject);
}

// --- Bounded admission queue ----------------------------------------------

TEST(ConcurrencyTest, BoundedQueueBackpressureAndDrain) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3)) << "queue over capacity";
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.high_water(), 2u);

  // A blocked Push completes once a consumer makes room.
  std::thread producer([&] { EXPECT_TRUE(q.Push(3)); });
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  producer.join();

  // Close drains: queued items still pop, then Pop reports exhaustion.
  q.Close();
  EXPECT_FALSE(q.Push(4));
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(q.Pop(&out));
}

TEST(ConcurrencyTest, ShutdownDrainsPendingRequests) {
  Instance inst = MakeBookInstance();
  CheckServiceOptions options;
  options.worker_threads = 2;
  CheckService svc(inst.uf.get(), options);
  auto session = svc.OpenSession();
  CheckOptions dry;
  dry.apply = false;
  std::vector<std::future<CheckReport>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(svc.Submit(session, fixtures::PaperUpdate(8), dry));
  }
  svc.Shutdown();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().outcome, CheckOutcome::kExecuted);
  }
  // Post-shutdown submissions resolve immediately with a rejection.
  CheckReport rejected = svc.Submit(session, fixtures::PaperUpdate(8)).get();
  EXPECT_EQ(rejected.outcome, CheckOutcome::kInvalid);
}

// --- Shared plan cache under concurrency ----------------------------------

TEST(ConcurrencyTest, PlanCacheIsThreadSafeAndCountsWork) {
  Instance inst = MakeBookInstance();
  inst.uf->plan_cache().ResetCounters();
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        for (int u = 8; u <= 12; ++u) {
          auto plan = inst.uf->Prepare(fixtures::PaperUpdate(u));
          ASSERT_NE(plan, nullptr);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  check::PlanCacheCounters counters = inst.uf->plan_cache().counters();
  EXPECT_EQ(counters.hits + counters.misses,
            static_cast<uint64_t>(kThreads) * kRounds * 5);
  // Every template compiled at least once, and the cache served the rest.
  EXPECT_GE(counters.misses, 5u);
  EXPECT_GT(counters.hits, counters.misses);
  EXPECT_EQ(inst.uf->plan_cache().size(), 5u);
}

// --- Durability through the service (PR 6) --------------------------------

TEST(ConcurrencyTest, DurableServiceWritesWalAndRecoversExactState) {
  constexpr int kDepth = 2;
  constexpr int kRows = 16;
  test_support::TempDir tmp("ufilter_svc");
  ASSERT_TRUE(tmp.ok());

  Instance inst = MakeChainInstance(kDepth, kRows);
  CheckServiceOptions options;
  options.worker_threads = 4;
  options.durability.wal_path = tmp.path("svc.wal");
  options.durability.fsync_policy = relational::FsyncPolicy::kGroup;
  options.durability.group_commit_size = 4;
  uint64_t live_epoch = 0;
  std::string live_state;
  {
    CheckService svc(inst.uf.get(), options);
    ASSERT_TRUE(svc.durability_status().ok())
        << svc.durability_status().ToString();
    // The database predates the WAL, so anchor the seed in a checkpoint
    // (EnableDurability's documented contract for pre-populated data).
    ASSERT_TRUE(
        inst.db->WriteCheckpoint(tmp.path("svc.ckpt")).status().ok());

    std::vector<std::shared_ptr<Session>> sessions;
    for (int t = 0; t < 4; ++t) sessions.push_back(svc.OpenSession());
    CheckOptions apply;  // writer lane -> one WAL record per commit
    CheckOptions dry;
    dry.apply = false;  // fast path -> must never touch the WAL
    std::vector<std::future<CheckReport>> futures;
    for (int i = 0; i < 32; ++i) {
      futures.push_back(svc.Submit(
          sessions[static_cast<size_t>(i) % 4],
          fixtures::ChainReplaceUpdate(kDepth - 1, i % kRows,
                                       i % 2 == 0 ? "wal" : "fsync"),
          apply));
      futures.push_back(svc.Submit(
          sessions[static_cast<size_t>(i + 1) % 4],
          fixtures::ChainDeleteUpdate(kDepth - 1, i % kRows), dry));
    }
    for (auto& f : futures) {
      EXPECT_EQ(f.get().outcome, CheckOutcome::kExecuted);
    }
    svc.Shutdown();  // durability barrier: final group fsynced

    CheckServiceStats stats = svc.Snapshot();
    EXPECT_GT(stats.wal_records, 0u);
    EXPECT_GT(stats.wal_bytes, 0u);
    EXPECT_GE(stats.wal_fsyncs, 1u);
    EXPECT_LT(stats.wal_fsyncs, stats.wal_records)
        << "group commit must amortize fsyncs across writer-lane commits";
    EXPECT_GE(stats.wal_group_commit_size, 1u);
    EXPECT_GT(stats.fast_path, 0u);
    ASSERT_TRUE(inst.db->wal_status().ok());
    live_epoch = inst.db->commit_epoch();
    Result<std::string> state = inst.db->SerializePublishedState();
    ASSERT_TRUE(state.ok());
    live_state = *state;
  }

  // Recovery: checkpoint (the pre-service seed) + WAL suffix (the applies)
  // lands byte-exactly on the live state the service left behind.
  auto recovered = Database::Create(fixtures::MakeChainSchema(kDepth));
  ASSERT_TRUE(recovered.ok());
  relational::DurabilityOptions recover_opts = options.durability;
  recover_opts.checkpoint_path = tmp.path("svc.ckpt");
  Status rs = (*recovered)->RecoverFrom(recover_opts);
  ASSERT_TRUE(rs.ok()) << rs.ToString();
  EXPECT_EQ((*recovered)->commit_epoch(), live_epoch);
  Result<std::string> replayed = (*recovered)->SerializePublishedState();
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(*replayed, live_state);
}

TEST(ConcurrencyTest, DurabilityOffLeavesWalCountersZero) {
  Instance inst = MakeChainInstance(2, 8);
  CheckService svc(inst.uf.get(), CheckServiceOptions{});
  auto session = svc.OpenSession();
  CheckOptions apply;
  EXPECT_EQ(
      svc.Submit(session, fixtures::ChainReplaceUpdate(1, 0, "x"), apply)
          .get()
          .outcome,
      CheckOutcome::kExecuted);
  svc.Shutdown();
  CheckServiceStats stats = svc.Snapshot();
  EXPECT_TRUE(svc.durability_status().ok());
  EXPECT_EQ(stats.wal_records, 0u);
  EXPECT_EQ(stats.wal_fsyncs, 0u);
  EXPECT_EQ(stats.wal_bytes, 0u);
  EXPECT_FALSE(inst.db->durability_enabled());
}

}  // namespace
}  // namespace ufilter
