// BoundedQueue semantics under contention: close/drain guarantees (no
// admitted item is ever lost, even when Close() races pushes — the
// regression for the closed-but-racing-push window), deadline-bounded
// PushFor/PopFor (neither producers nor the drain path can block forever),
// and high_water accounting under 8-thread storms. Runs under
// ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "service/bounded_queue.h"

namespace ufilter::service {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(BoundedQueueTest, FifoAndSize) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_EQ(q.size(), 0u);
}

// The per-entry push timestamp is what the service's queue_wait histogram
// is built on: Pop must hand back the instant the item entered the queue,
// so residency (pop − pushed_at) reflects real queue wait.
TEST(BoundedQueueTest, PopReturnsPushTimestamp) {
  BoundedQueue<int> q(4);
  auto before_push = steady_clock::now();
  ASSERT_TRUE(q.Push(1));
  auto after_push = steady_clock::now();
  std::this_thread::sleep_for(milliseconds(20));
  int out = 0;
  steady_clock::time_point pushed_at{};
  ASSERT_TRUE(q.Pop(&out, &pushed_at));
  EXPECT_EQ(out, 1);
  auto popped_at = steady_clock::now();
  // The stamp brackets the Push call, not the Pop.
  EXPECT_GE(pushed_at, before_push);
  EXPECT_LE(pushed_at, after_push);
  // Residency covers the sleep between push and pop.
  EXPECT_GE(popped_at - pushed_at, milliseconds(20));

  // PopFor reports the stamp too (the drain path uses it).
  ASSERT_TRUE(q.TryPush(2));
  steady_clock::time_point pushed_at2{};
  EXPECT_EQ(q.PopFor(&out, steady_clock::now() + milliseconds(1000),
                     &pushed_at2),
            QueueWaitResult::kOk);
  EXPECT_EQ(out, 2);
  EXPECT_GE(pushed_at2, after_push);
  EXPECT_LE(pushed_at2, steady_clock::now());
}

TEST(BoundedQueueTest, TryPushShedsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BoundedQueueTest, PushForTimesOutOnFullQueue) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  auto start = steady_clock::now();
  QueueWaitResult r = q.PushFor(2, start + milliseconds(30));
  EXPECT_EQ(r, QueueWaitResult::kTimedOut);
  EXPECT_GE(steady_clock::now() - start, milliseconds(25));
  // The queue is untouched and still usable.
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.PushFor(2, steady_clock::now() + milliseconds(30)),
            QueueWaitResult::kOk);
}

TEST(BoundedQueueTest, PushForSucceedsWhenRoomAppears) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread popper([&] {
    std::this_thread::sleep_for(milliseconds(20));
    int out = 0;
    ASSERT_TRUE(q.Pop(&out));
  });
  EXPECT_EQ(q.PushFor(2, steady_clock::now() + milliseconds(2000)),
            QueueWaitResult::kOk);
  popper.join();
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, PopForTimesOutWithoutClosing) {
  BoundedQueue<int> q(4);
  int out = 0;
  auto start = steady_clock::now();
  EXPECT_EQ(q.PopFor(&out, start + milliseconds(30)),
            QueueWaitResult::kTimedOut);
  // Timed out, not closed: a later push is still delivered.
  EXPECT_TRUE(q.Push(7));
  EXPECT_EQ(q.PopFor(&out, steady_clock::now() + milliseconds(1000)),
            QueueWaitResult::kOk);
  EXPECT_EQ(out, 7);
}

TEST(BoundedQueueTest, PopForDistinguishesClosedFromTimeout) {
  BoundedQueue<int> q(4);
  q.Close();
  int out = 0;
  EXPECT_EQ(q.PopFor(&out, steady_clock::now() + milliseconds(10)),
            QueueWaitResult::kClosed);
  EXPECT_EQ(q.PushFor(1, steady_clock::now() + milliseconds(10)),
            QueueWaitResult::kClosed);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> push_refused{false};
  std::thread producer([&] {
    // Blocks (queue full) until Close() wakes it with a refusal.
    push_refused = !q.Push(2);
  });
  BoundedQueue<int> empty(1);
  std::atomic<bool> pop_refused{false};
  std::thread consumer([&] {
    int out = 0;
    pop_refused = !empty.Pop(&out);
  });
  std::this_thread::sleep_for(milliseconds(20));
  q.Close();
  empty.Close();
  producer.join();
  consumer.join();
  EXPECT_TRUE(push_refused);
  EXPECT_TRUE(pop_refused);
  // The item admitted before Close is still drainable.
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(q.Pop(&out));
}

// Regression for the closed-but-racing-push window: N producers hammer
// Push/TryPush/PushFor while a closer thread closes mid-storm and M
// consumers drain. Every push that reported success must be popped exactly
// once before consumers observe closed-and-drained — an admitted item is
// never lost, and no consumer exits while admitted items remain.
TEST(BoundedQueueTest, CloseRacingPushNeverLosesAdmittedItems) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 400;
  for (int round = 0; round < 8; ++round) {
    BoundedQueue<int> q(8);
    std::atomic<uint64_t> admitted{0};
    std::atomic<uint64_t> popped{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
      threads.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          bool ok = false;
          switch (i % 3) {
            case 0:
              ok = q.Push(p * kPerProducer + i);
              break;
            case 1:
              ok = q.TryPush(p * kPerProducer + i);
              break;
            default:
              ok = q.PushFor(p * kPerProducer + i,
                             steady_clock::now() + milliseconds(1)) ==
                   QueueWaitResult::kOk;
              break;
          }
          if (ok) {
            ++admitted;
          } else if (q.closed()) {
            return;  // refusals after close are expected; stop producing
          }
        }
      });
    }
    for (int c = 0; c < kConsumers; ++c) {
      threads.emplace_back([&] {
        int out = 0;
        while (q.Pop(&out)) ++popped;
        // Closed and drained: nothing may remain.
        EXPECT_EQ(q.size(), 0u);
      });
    }
    // Close somewhere in the middle of the storm.
    std::this_thread::sleep_for(milliseconds(2));
    q.Close();
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(admitted.load(), popped.load()) << "round " << round;
    EXPECT_EQ(q.size(), 0u);
  }
}

// high_water accounting under 8-thread contention: it only grows, never
// exceeds capacity, and reflects at least the deepest stable backlog.
TEST(BoundedQueueTest, HighWaterUnderContention) {
  constexpr size_t kCapacity = 16;
  BoundedQueue<int> q(kCapacity);
  // Deterministic floor: fill to capacity once, drain, then storm.
  for (size_t i = 0; i < kCapacity; ++i) ASSERT_TRUE(q.Push(1));
  EXPECT_EQ(q.high_water(), kCapacity);
  int out = 0;
  while (q.size() > 0) ASSERT_TRUE(q.Pop(&out));

  std::vector<std::thread> threads;
  std::atomic<uint64_t> admitted{0};
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (q.TryPush(i)) ++admitted;
      }
    });
  }
  std::atomic<uint64_t> popped{0};
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      int v = 0;
      while (q.Pop(&v)) ++popped;
    });
  }
  // Let the storm run, then drain.
  std::this_thread::sleep_for(milliseconds(20));
  for (int p = 0; p < 4; ++p) threads[static_cast<size_t>(p)].join();
  q.Close();
  for (size_t t = 4; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(admitted.load(), popped.load());
  EXPECT_GE(q.high_water(), 1u);
  EXPECT_LE(q.high_water(), kCapacity);
}

}  // namespace
}  // namespace ufilter::service
