// Replication under injected transport faults: the follower's subscription
// runs through the chaos proxy and must survive severed connections,
// blackholes and corrupt bytes by reconnecting and resuming from its own
// epoch — converging to the primary every time, with no epoch ever applied
// twice. Also pins the source's side of the contract: one bad frame drops
// exactly that subscription.
#include "net/replication.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "../support/chaos_proxy.h"
#include "../support/temp_dir.h"
#include "fixtures/synthetic.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"

namespace ufilter::net {
namespace {

using check::UFilter;
using relational::Database;
using test_support::TempDir;
using testing::ChaosProxy;

constexpr int kDepth = 2;
constexpr int kRows = 10;

struct Rig {
  Rig() = default;
  Rig(Rig&&) = default;
  Rig& operator=(Rig&&) = default;

  std::unique_ptr<Database> primary_db;
  std::unique_ptr<UFilter> primary_uf;
  std::unique_ptr<Server> primary_server;
  std::unique_ptr<ReplicationSource> source;
  std::unique_ptr<ChaosProxy> proxy;
  std::unique_ptr<Database> follower_db;
  std::unique_ptr<UFilter> follower_uf;
  std::unique_ptr<Server> follower_server;
  std::unique_ptr<Follower> follower;

  static Rig Up(const std::string& wal) {
    Rig rig;
    auto db = Database::Create(fixtures::MakeChainSchema(kDepth));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    rig.primary_db = std::move(*db);
    relational::DurabilityOptions dopts;
    dopts.wal_path = wal;
    dopts.fsync_policy = relational::FsyncPolicy::kGroup;
    EXPECT_TRUE(rig.primary_db->EnableDurability(dopts).ok());
    EXPECT_TRUE(
        fixtures::PopulateChain(rig.primary_db.get(), kDepth, kRows).ok());
    EXPECT_TRUE(rig.primary_db->PublishVersion().ok());
    auto uf = UFilter::Create(rig.primary_db.get(),
                              fixtures::ChainViewQuery(kDepth));
    EXPECT_TRUE(uf.ok()) << uf.status().ToString();
    rig.primary_uf = std::move(*uf);
    auto server = Server::Start(rig.primary_uf.get());
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    rig.primary_server = std::move(*server);

    ReplicationSourceOptions ropts;
    ropts.wal_path = wal;
    auto src = ReplicationSource::Start(
        rig.primary_db.get(), &rig.primary_server->service().registry(),
        ropts);
    EXPECT_TRUE(src.ok()) << src.status().ToString();
    rig.source = std::move(*src);
    rig.proxy = std::make_unique<ChaosProxy>(rig.source->port());

    auto fdb = Database::Create(fixtures::MakeChainSchema(kDepth));
    EXPECT_TRUE(fdb.ok()) << fdb.status().ToString();
    rig.follower_db = std::move(*fdb);
    auto fuf = UFilter::Create(rig.follower_db.get(),
                               fixtures::ChainViewQuery(kDepth));
    EXPECT_TRUE(fuf.ok()) << fuf.status().ToString();
    rig.follower_uf = std::move(*fuf);
    auto fserver = Server::Start(rig.follower_uf.get());
    EXPECT_TRUE(fserver.ok()) << fserver.status().ToString();
    rig.follower_server = std::move(*fserver);

    FollowerOptions fopts;
    fopts.port = rig.proxy->port();
    // Tight liveness so a blackholed connection is declared dead fast.
    fopts.dead_after = std::chrono::milliseconds(400);
    fopts.backoff_max = std::chrono::milliseconds(100);
    rig.follower = Follower::Start(&rig.follower_server->service(),
                                   rig.follower_db.get(), fopts);
    return rig;
  }

  Status Commit(int batch) {
    return fixtures::ApplyChainBatch(primary_db.get(), kDepth, kRows,
                                     /*seed=*/23, batch);
  }

  void ExpectConverged(const char* label) {
    ASSERT_TRUE(follower->WaitForEpoch(primary_db->commit_epoch(),
                                       std::chrono::seconds(15)))
        << label << ": follower stuck at " << follower->applied_epoch()
        << " of " << primary_db->commit_epoch() << " (status "
        << follower->status().ToString() << ")";
    auto want = primary_db->SerializePublishedState();
    auto got = follower_db->SerializePublishedState();
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *want) << label;
    EXPECT_TRUE(follower->status().ok()) << label;
  }

  ~Rig() {
    if (follower != nullptr) follower->Stop();
    if (proxy != nullptr) proxy->Stop();
    if (source != nullptr) source->Stop();
  }
};

TEST(ReplicationChaosTest, SeveredSubscriptionReconnectsAndResumes) {
  TempDir tmp("repl_sever");
  ASSERT_TRUE(tmp.ok());
  Rig rig = Rig::Up(tmp.path("primary.wal"));
  ASSERT_TRUE(rig.Commit(0).ok());
  rig.ExpectConverged("initial catch-up");
  const uint64_t connects_before = rig.follower->stats().connects;
  const uint64_t applied_before = rig.follower->stats().records_applied;

  rig.proxy->SeverAll();
  ASSERT_TRUE(rig.Commit(1).ok());
  ASSERT_TRUE(rig.Commit(2).ok());
  rig.ExpectConverged("post-sever");
  EXPECT_GT(rig.follower->stats().connects, connects_before)
      << "convergence without a reconnect means the sever missed";
  // Exactly the two severed-era epochs applied: resume-from-epoch never
  // replays what the follower already has (idempotent skips aside).
  EXPECT_EQ(rig.follower->stats().records_applied, applied_before + 2);
}

TEST(ReplicationChaosTest, BlackholedStreamIsDeclaredDeadAndRebuilt) {
  TempDir tmp("repl_hole");
  ASSERT_TRUE(tmp.ok());
  Rig rig = Rig::Up(tmp.path("primary.wal"));
  ASSERT_TRUE(rig.Commit(0).ok());
  rig.ExpectConverged("initial catch-up");
  const uint64_t connects_before = rig.follower->stats().connects;

  // Bytes vanish silently: no FIN, no RST. Only the dead_after watchdog
  // can notice. Commits continue during the outage.
  rig.proxy->Blackhole(true);
  ASSERT_TRUE(rig.Commit(1).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  rig.proxy->Blackhole(false);
  ASSERT_TRUE(rig.Commit(2).ok());
  rig.ExpectConverged("post-blackhole");
  EXPECT_GT(rig.follower->stats().connects, connects_before);
}

TEST(ReplicationChaosTest, CorruptFrameDropsSubscriptionThenResumes) {
  TempDir tmp("repl_corrupt");
  ASSERT_TRUE(tmp.ok());
  Rig rig = Rig::Up(tmp.path("primary.wal"));
  ASSERT_TRUE(rig.Commit(0).ok());
  rig.ExpectConverged("initial catch-up");

  // Flip a bit in the follower's next upstream chunk (an ack): the source
  // fails the CRC, drops that subscription, and the follower rebuilds it.
  rig.proxy->CorruptNext();
  ASSERT_TRUE(rig.Commit(1).ok());
  rig.ExpectConverged("post-corruption");
  bool dropped = false;
  for (int i = 0; i < 100 && !dropped; ++i) {
    dropped = rig.source->stats().protocol_errors >= 1;
    if (!dropped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(dropped) << "the corrupt frame was never noticed";

  // Chaos over: the stream keeps working.
  ASSERT_TRUE(rig.Commit(2).ok());
  rig.ExpectConverged("post-recovery");
}

TEST(ReplicationChaosTest, RepeatedFaultsNeverDoubleApplyAnEpoch) {
  TempDir tmp("repl_storm");
  ASSERT_TRUE(tmp.ok());
  Rig rig = Rig::Up(tmp.path("primary.wal"));
  int batch = 0;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(rig.Commit(batch++).ok());
    rig.proxy->SeverAll();
    ASSERT_TRUE(rig.Commit(batch++).ok());
    rig.proxy->CorruptNext();
    ASSERT_TRUE(rig.Commit(batch++).ok());
    rig.ExpectConverged("storm round");
  }
  // Convergence is byte-equal (checked each round); on top of that the
  // accounting must balance: each of the `batch` committed epochs was
  // applied at most once (the bootstrap snapshot may cover a prefix), and
  // anything a resume re-delivered was skipped, never re-applied.
  auto stats = rig.follower->stats();
  EXPECT_LE(stats.records_applied, static_cast<uint64_t>(batch))
      << "more records applied than epochs committed: an epoch ran twice";
  EXPECT_EQ(rig.follower_db->commit_epoch(), rig.primary_db->commit_epoch());
}

// One bad frame — wrong type or garbage bytes — costs exactly that
// subscription, nothing else.
TEST(ReplicationChaosTest, BadFirstFrameIsRefusedWithoutCollateral) {
  TempDir tmp("repl_bad");
  ASSERT_TRUE(tmp.ok());
  Rig rig = Rig::Up(tmp.path("primary.wal"));
  ASSERT_TRUE(rig.Commit(0).ok());
  rig.ExpectConverged("healthy subscriber up");
  const uint64_t errors_before = rig.source->stats().protocol_errors;

  // A peer whose first frame is not kReplSubscribe (a check request on the
  // replication plane) is hung up on.
  {
    auto fd = ConnectTcp("127.0.0.1", rig.source->port(),
                         std::chrono::milliseconds(1000));
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
    ASSERT_TRUE(SendAll(*fd, kNetMagic, kNetMagicLen, deadline).ok());
    CheckRequestMsg req;
    req.request_id = 1;
    req.update_text = "not a subscription";
    std::string frame = FramePayload(EncodeCheckRequest(req));
    ASSERT_TRUE(SendAll(*fd, frame.data(), frame.size(), deadline).ok());
    char buf[16];
    auto got = RecvSome(*fd, buf, sizeof(buf),
                        std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(5000));
    EXPECT_FALSE(got.ok()) << "the source answered a non-subscribe frame";
    CloseFd(*fd);
  }
  bool counted = false;
  for (int i = 0; i < 100 && !counted; ++i) {
    counted = rig.source->stats().protocol_errors > errors_before;
    if (!counted) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(counted);

  // The healthy subscription never noticed.
  ASSERT_TRUE(rig.Commit(1).ok());
  rig.ExpectConverged("after the bad peer");
  EXPECT_TRUE(rig.follower->status().ok());
}

}  // namespace
}  // namespace ufilter::net
