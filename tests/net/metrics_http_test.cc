#include "net/metrics_http.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace ufilter::net {
namespace {

// One raw HTTP GET against the exporter, the way curl / a Prometheus
// scrape would issue it.
std::string HttpGet(uint16_t port) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  auto fd = ConnectTcp("127.0.0.1", port, std::chrono::milliseconds(2000));
  if (!fd.ok()) return "";
  std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
  if (!SendAll(*fd, req.data(), req.size(), deadline).ok()) {
    CloseFd(*fd);
    return "";
  }
  std::string out;
  char buf[4096];
  while (true) {
    auto n = RecvSome(*fd, buf, sizeof(buf), deadline);
    if (!n.ok()) break;  // EOF: server closes after one response
    out.append(buf, *n);
  }
  CloseFd(*fd);
  return out;
}

TEST(MetricsHttpTest, ServesPrometheusText) {
  obs::Registry registry;
  registry.GetCounter("scrape_me")->Add(11);
  registry.GetHistogram("lat_ns")->Record(250);

  MetricsHttpServer server;
  ASSERT_TRUE(server
                  .Start(0,
                         [&registry] {
                           return obs::RenderPrometheus(registry.Collect());
                         })
                  .ok());
  ASSERT_NE(server.port(), 0);

  for (int scrape = 1; scrape <= 2; ++scrape) {  // connection-per-scrape
    std::string response = HttpGet(server.port());
    ASSERT_FALSE(response.empty());
    EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response;
    EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
              std::string::npos);
    // Headers end, then the rendered registry.
    size_t body_at = response.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    std::string body = response.substr(body_at + 4);
    EXPECT_NE(body.find("# TYPE ufilter_scrape_me counter\n"),
              std::string::npos);
    EXPECT_NE(body.find("ufilter_scrape_me 11\n"), std::string::npos);
    EXPECT_NE(body.find("ufilter_lat_ns_bucket{le=\"+Inf\"} 1\n"),
              std::string::npos);
    // Content-Length matches the body exactly (HTTP/1.0 clients need it).
    size_t len_at = response.find("Content-Length: ");
    ASSERT_NE(len_at, std::string::npos);
    EXPECT_EQ(static_cast<size_t>(
                  std::stoul(response.substr(len_at + 16))),
              body.size());
  }
  EXPECT_EQ(server.scrapes(), 2u);
  server.Stop();
  server.Stop();  // idempotent
}

TEST(MetricsHttpTest, StartOnBusyStateFails) {
  MetricsHttpServer server;
  ASSERT_TRUE(server.Start(0, [] { return std::string("x"); }).ok());
  EXPECT_FALSE(server.Start(0, [] { return std::string("y"); }).ok());
  server.Stop();
}

}  // namespace
}  // namespace ufilter::net
