// kill -9 the real server binary mid-stream, restart it on the same WAL,
// and prove the recovered server gives the same verdicts as an in-process
// database recovered from the very same log. This is the process-level
// twin of tests/integration/crash_recovery_fuzz_test.cc: the WAL is the
// only thing that survives, so verdict agreement after restart means the
// recovered state is the certified state.
//
// Requires the ufilter_server binary, located via the UFILTER_SERVER_BIN
// environment variable (set by CMake); skipped when absent.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fixtures/synthetic.h"
#include "net/client.h"
#include "net/frame.h"
#include "relational/database.h"
#include "ufilter/checker.h"

#include "../support/temp_dir.h"

namespace ufilter::net {
namespace {

constexpr int kDepth = 2;
constexpr int kRows = 16;

Verdict ExpectedVerdict(check::CheckOutcome outcome) {
  switch (outcome) {
    case check::CheckOutcome::kExecuted:
      return Verdict::kExecuted;
    case check::CheckOutcome::kInvalid:
      return Verdict::kInvalid;
    case check::CheckOutcome::kUntranslatable:
      return Verdict::kUntranslatable;
    case check::CheckOutcome::kDataConflict:
      return Verdict::kDataConflict;
    case check::CheckOutcome::kNotRun:
      return Verdict::kNotRun;
    case check::CheckOutcome::kDeadlineExceeded:
      return Verdict::kDeadlineExceeded;
  }
  return Verdict::kError;
}

struct ServerProcess {
  pid_t pid = -1;
  uint16_t port = 0;

  static ServerProcess Launch(const char* bin, const std::string& wal) {
    ServerProcess proc;
    int out[2];
    if (pipe(out) != 0) return proc;
    pid_t pid = fork();
    if (pid < 0) {
      close(out[0]);
      close(out[1]);
      return proc;
    }
    if (pid == 0) {
      dup2(out[1], STDOUT_FILENO);
      close(out[0]);
      close(out[1]);
      std::string wal_flag = "--wal=" + wal;
      std::string depth_flag = "--depth=" + std::to_string(kDepth);
      std::string rows_flag = "--rows=" + std::to_string(kRows);
      execl(bin, bin, wal_flag.c_str(), depth_flag.c_str(), rows_flag.c_str(),
            "--workers=2", "--fsync=always", static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    close(out[1]);
    // Wait for "READY <port>\n" on the child's stdout.
    std::string line;
    char c;
    while (read(out[0], &c, 1) == 1 && c != '\n') line.push_back(c);
    close(out[0]);
    proc.pid = pid;
    if (line.rfind("READY ", 0) == 0) {
      proc.port = static_cast<uint16_t>(std::atoi(line.c_str() + 6));
    }
    return proc;
  }

  void Kill9() {
    kill(pid, SIGKILL);
    int wstatus = 0;
    waitpid(pid, &wstatus, 0);
    pid = -1;
  }

  /// SIGTERM and expect a clean drain (exit 0).
  int Terminate() {
    kill(pid, SIGTERM);
    int wstatus = 0;
    waitpid(pid, &wstatus, 0);
    pid = -1;
    return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
  }

  ~ServerProcess() {
    if (pid > 0) Kill9();
  }
};

/// The post-crash probe workload: verdicts and row counts depend on what
/// survived the crash (deletes of maybe-already-deleted keys, replaces of
/// maybe-deleted keys), so agreement implies state agreement.
std::vector<std::string> ProbeUpdates() {
  std::vector<std::string> updates;
  for (int64_t key = 1; key <= 4; ++key) {
    updates.push_back(fixtures::ChainReplaceUpdate(1, key, "after-crash"));
  }
  for (int64_t key = 5; key <= 8; ++key) {
    updates.push_back(fixtures::ChainDeleteUpdate(1, key));
  }
  return updates;
}

TEST(CrashRestartTest, RecoveredServerMatchesWalRecoveredBaseline) {
  const char* bin = std::getenv("UFILTER_SERVER_BIN");
  if (bin == nullptr || *bin == '\0') {
    GTEST_SKIP() << "UFILTER_SERVER_BIN not set";
  }
  test_support::TempDir tmp("ufilter_crash");
  ASSERT_TRUE(tmp.ok());
  const std::string wal = tmp.path("server.wal");

  // --- Phase 1: fresh server, applies streaming in, kill -9 mid-stream.
  ServerProcess first = ServerProcess::Launch(bin, wal);
  ASSERT_GT(first.pid, 0);
  ASSERT_GT(first.port, 0);
  {
    ClientOptions opts;
    opts.port = first.port;
    Client client(opts);
    for (int64_t key = 1; key <= 6; ++key) {
      auto resp = client.Check(
          fixtures::ChainReplaceUpdate(1, key, "before-crash"), true);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      ASSERT_EQ(resp->verdict, Verdict::kExecuted) << resp->message;
    }
    // Deletes 5 and 6 land before the crash; their keys must stay gone
    // after recovery.
    for (int64_t key = 5; key <= 6; ++key) {
      auto resp = client.Check(fixtures::ChainDeleteUpdate(1, key), true);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    }
    // One more apply fired without waiting for its response — the crash
    // races it; the WAL decides whether it survived, identically for the
    // server and the baseline below.
    std::thread racer([&] {
      ClientOptions ropts;
      ropts.port = first.port;
      ropts.max_attempts = 1;
      Client racing(ropts);
      (void)racing.Check(fixtures::ChainReplaceUpdate(1, 2, "racing"), true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    first.Kill9();
    racer.join();
  }

  // --- Phase 2: snapshot the WAL (the restarted server appends to the
  // original) and build the in-process baseline from the snapshot.
  const std::string wal_copy = tmp.path("server.wal.copy");
  std::error_code ec;
  std::filesystem::copy_file(wal, wal_copy, ec);
  ASSERT_FALSE(ec) << ec.message();

  auto baseline_db_result =
      relational::Database::Create(fixtures::MakeChainSchema(kDepth));
  ASSERT_TRUE(baseline_db_result.ok())
      << baseline_db_result.status().ToString();
  std::unique_ptr<relational::Database> baseline_db =
      std::move(*baseline_db_result);
  ASSERT_TRUE(baseline_db->RecoverFrom(wal_copy).ok());
  auto baseline_uf = check::UFilter::Create(baseline_db.get(),
                                            fixtures::ChainViewQuery(kDepth));
  ASSERT_TRUE(baseline_uf.ok()) << baseline_uf.status().ToString();

  // --- Phase 3: restart the server on the original WAL and run the same
  // probe workload against both; every verdict and row count must agree.
  ServerProcess second = ServerProcess::Launch(bin, wal);
  ASSERT_GT(second.pid, 0);
  ASSERT_GT(second.port, 0);
  {
    ClientOptions opts;
    opts.port = second.port;
    Client client(opts);
    check::CheckOptions apply;
    apply.apply = true;
    int executed = 0;
    for (const std::string& update : ProbeUpdates()) {
      auto wire = client.Check(update, /*apply=*/true);
      ASSERT_TRUE(wire.ok()) << update << ": " << wire.status().ToString();
      check::CheckReport local = (*baseline_uf)->Check(update, apply);
      // Pairwise agreement, field by field.
      EXPECT_EQ(wire->verdict, ExpectedVerdict(local.outcome)) << update;
      EXPECT_EQ(wire->rows_affected, local.rows_affected) << update;
      EXPECT_EQ(wire->status_code, static_cast<uint8_t>(local.error.code()))
          << update;
      if (wire->verdict == Verdict::kExecuted) ++executed;
    }
    // Guard against vacuous agreement: if the seed never reached the WAL,
    // both sides recover *empty* and every probe "agrees" on no-rows
    // verdicts. Some probes hit seeded keys, so some must execute.
    EXPECT_GT(executed, 0) << "recovered database lost the seeded rows";
    // Clean shutdown this time: SIGTERM drains and exits 0.
    EXPECT_EQ(second.Terminate(), 0);
  }
}

}  // namespace
}  // namespace ufilter::net
