// The chaos suite: client and server behavior under injected socket
// faults (tests/support/chaos_proxy.h). The acceptance criteria it pins:
//   - no client call ever hangs past its deadline budget, whatever the
//     network does;
//   - wire damage (bit flips, torn frames, severed connections) never
//     crashes the server and drops only the damaged connection;
//   - check-only requests are retried through transient faults and still
//     come back with the right verdict;
//   - an apply whose response is lost is indeterminate: surfaced as an
//     error, never silently retried (retrying could double-apply).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "fixtures/synthetic.h"
#include "net/client.h"
#include "net/server.h"

#include "../support/chaos_proxy.h"

namespace ufilter::net {
namespace {

using check::UFilter;
using relational::Database;
using testing::ChaosProxy;

struct Instance {
  std::unique_ptr<Database> db;
  std::unique_ptr<UFilter> uf;
};

Instance MakeChainInstance(int depth, int rows) {
  Instance inst;
  auto db = fixtures::MakeChainDatabase(depth, rows,
                                        relational::DeletePolicy::kCascade);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  inst.db = std::move(*db);
  auto uf = UFilter::Create(inst.db.get(), fixtures::ChainViewQuery(depth));
  EXPECT_TRUE(uf.ok()) << uf.status().ToString();
  inst.uf = std::move(*uf);
  return inst;
}

struct Rig {
  Instance inst;
  std::unique_ptr<Server> server;
  std::unique_ptr<ChaosProxy> proxy;

  static Rig Up(ServerOptions opts = {}) {
    Rig rig;
    rig.inst = MakeChainInstance(2, 16);
    if (opts.service.worker_threads == 0) opts.service.worker_threads = 2;
    auto server = Server::Start(rig.inst.uf.get(), opts);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    rig.server = std::move(*server);
    rig.proxy = std::make_unique<ChaosProxy>(rig.server->port());
    return rig;
  }

  ClientOptions ThroughProxy() const {
    ClientOptions opts;
    opts.port = proxy->port();
    return opts;
  }
};

std::string CheckOnlyUpdate() {
  return fixtures::ChainReplaceUpdate(1, 1, "chaos-check");
}

TEST(ChaosTest, DelayedNetworkStillSucceeds) {
  Rig rig = Rig::Up();
  rig.proxy->SetDelayMs(30);
  Client client(rig.ThroughProxy());
  auto resp = client.Check(CheckOnlyUpdate(), /*apply=*/false);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->verdict, Verdict::kExecuted) << resp->message;
}

TEST(ChaosTest, BlackholeNeverHangsPastDeadline) {
  Rig rig = Rig::Up();
  rig.proxy->Blackhole(true);

  ClientOptions opts = rig.ThroughProxy();
  opts.request_timeout = std::chrono::milliseconds(200);
  opts.connect_timeout = std::chrono::milliseconds(200);
  opts.max_attempts = 2;
  opts.backoff_max = std::chrono::milliseconds(50);
  Client client(opts);

  auto start = std::chrono::steady_clock::now();
  auto resp = client.Check(CheckOnlyUpdate(), /*apply=*/false);
  auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_FALSE(resp.ok());
  // 2 attempts x 200ms budget + one jittered backoff + generous slack —
  // but never an unbounded hang.
  EXPECT_LT(elapsed, std::chrono::milliseconds(3000));
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed),
            std::chrono::milliseconds(200));

  // The swallowed bytes hurt nobody else: a direct client still works.
  ClientOptions direct;
  direct.port = rig.server->port();
  Client healthy(direct);
  EXPECT_TRUE(healthy.Ping().ok());
}

TEST(ChaosTest, CorruptBytesDropConnectionAndCheckRetrySucceeds) {
  Rig rig = Rig::Up();
  rig.proxy->CorruptNext();

  Client client(rig.ThroughProxy());
  auto resp = client.Check(CheckOnlyUpdate(), /*apply=*/false);
  // The damaged attempt lost its connection (the server hangs up on CRC or
  // magic failure); the retry reconnects through the proxy and completes.
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->verdict, Verdict::kExecuted) << resp->message;
  EXPECT_GE(client.metrics().retries, 1u);
  EXPECT_GE(client.metrics().reconnects, 2u);
  EXPECT_GE(rig.server->stats().protocol_errors, 1u);
}

TEST(ChaosTest, FrameTornMidLengthPrefixIsQuietlyRetried) {
  Rig rig = Rig::Up();
  // Forward the magic plus two bytes of the first frame's length prefix,
  // then sever: the server holds a torn frame (not a protocol error — the
  // bytes it got were valid) and the client retries.
  rig.proxy->TruncateAfter(static_cast<int64_t>(kNetMagicLen) + 2);

  Client client(rig.ThroughProxy());
  auto resp = client.Check(CheckOnlyUpdate(), /*apply=*/false);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->verdict, Verdict::kExecuted) << resp->message;
  EXPECT_GE(client.metrics().retries, 1u);
}

TEST(ChaosTest, SeveredApplyIsIndeterminateAndNeverRetried) {
  ServerOptions sopts;
  sopts.service.worker_threads = 1;
  sopts.service.writer_lane_hold_ms_for_testing = 400;
  Rig rig = Rig::Up(sopts);

  ClientOptions opts = rig.ThroughProxy();
  opts.request_timeout = std::chrono::milliseconds(5000);
  Client client(opts);

  // The apply reaches the server (400ms writer hold), then the connection
  // dies under the client before the response comes back.
  Result<CheckResponseMsg> resp = Status::Unavailable("not yet run");
  std::thread caller([&] {
    resp = client.Check(fixtures::ChainReplaceUpdate(1, 2, "severed"), true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  rig.proxy->SeverAll();
  caller.join();

  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsUnavailable()) << resp.status().ToString();
  EXPECT_EQ(client.metrics().indeterminate, 1u);
  EXPECT_EQ(client.metrics().retries, 0u);

  // And the indeterminacy is real: the server did execute the apply. A
  // blind retry would have double-applied.
  ClientOptions direct;
  direct.port = rig.server->port();
  Client observer(direct);
  bool executed = false;
  for (int i = 0; i < 100 && !executed; ++i) {
    auto stats = observer.ServerStats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    executed = stats->writer_lane >= 1 && stats->completed >= 1;
    if (!executed) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(executed);
}

TEST(ChaosTest, RefusalRetryNeverLandsBeforeTheServerAdvertisedFloor) {
  // The regression this pins: a kShed/kDraining response carries
  // retry_after_ms, and the client's *first* backoff after it must honor
  // that floor — a jittered backoff alone could land the retry almost
  // immediately and pile onto an overloaded server. A shut-down check
  // service answers every request kDraining instantly (same client-side
  // floor path as kShed, without queue-timing races), so the elapsed time
  // isolates exactly the backoff.
  ServerOptions sopts;
  sopts.drain_retry_after_ms = 250;
  Rig rig = Rig::Up(sopts);
  rig.server->service().Shutdown();

  ClientOptions opts;
  opts.port = rig.server->port();
  opts.max_attempts = 2;
  opts.backoff_base = std::chrono::milliseconds(1);
  opts.backoff_max = std::chrono::milliseconds(2);
  Client probe(opts);
  auto start = std::chrono::steady_clock::now();
  auto resp = probe.Check(CheckOnlyUpdate(), /*apply=*/false);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_FALSE(resp.ok()) << "a shut-down service executed a request";
  ASSERT_EQ(probe.metrics().shed_seen, 2u) << resp.status().ToString();
  // Both refusals were answered in microseconds; the elapsed time is the
  // one backoff between them. The 250ms floor must dominate the 2ms
  // jitter ceiling — and stay a backoff, not a hang.
  EXPECT_GE(elapsed, std::chrono::milliseconds(250))
      << "retry landed before the server's advertised floor";
  EXPECT_LT(elapsed, std::chrono::milliseconds(2000));
}

TEST(ChaosTest, IndeterminateApplyStaysIndeterminateAcrossReconnect) {
  // The regression this pins: a client whose apply went indeterminate
  // reconnects for its *next* call — the reconnect must not resurrect or
  // silently re-send the lost apply, and must not count it twice.
  ServerOptions sopts;
  sopts.service.worker_threads = 1;
  sopts.service.writer_lane_hold_ms_for_testing = 400;
  Rig rig = Rig::Up(sopts);

  ClientOptions opts = rig.ThroughProxy();
  opts.request_timeout = std::chrono::milliseconds(5000);
  Client client(opts);

  Result<CheckResponseMsg> resp = Status::Unavailable("not yet run");
  std::thread caller([&] {
    resp = client.Check(fixtures::ChainReplaceUpdate(1, 6, "lost"), true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  rig.proxy->SeverAll();
  caller.join();
  ASSERT_FALSE(resp.ok());
  EXPECT_EQ(client.metrics().indeterminate, 1u);

  // The server finishes the orphaned apply exactly once.
  ClientOptions direct;
  direct.port = rig.server->port();
  Client observer(direct);
  bool executed = false;
  for (int i = 0; i < 200 && !executed; ++i) {
    auto stats = observer.ServerStats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    executed = stats->writer_lane >= 1;
    if (!executed) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(executed);

  // Network healed (SeverAll killed connections, not the proxy): the same
  // client's next call reconnects and succeeds.
  auto check = client.Check(CheckOnlyUpdate(), /*apply=*/false);
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  EXPECT_EQ(check->verdict, Verdict::kExecuted) << check->message;

  // Nothing was double-counted and nothing was re-sent: still exactly one
  // indeterminate apply client-side, exactly one writer-lane execution
  // server-side.
  EXPECT_EQ(client.metrics().indeterminate, 1u);
  auto stats = observer.ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->writer_lane, 1u);
}

TEST(ChaosTest, ServerSurvivesAStormOfBrokenPeers) {
  Rig rig = Rig::Up();
  // Rounds of damage: corrupt, truncated, and severed exchanges
  // interleaved with healthy ones; the server must answer every healthy
  // request correctly to the very end.
  for (int round = 0; round < 5; ++round) {
    rig.proxy->CorruptNext();
    Client damaged(rig.ThroughProxy());
    (void)damaged.Check(CheckOnlyUpdate(), /*apply=*/false);

    rig.proxy->TruncateAfter(static_cast<int64_t>(kNetMagicLen) + 1);
    Client torn(rig.ThroughProxy());
    (void)torn.Check(CheckOnlyUpdate(), /*apply=*/false);

    ClientOptions direct;
    direct.port = rig.server->port();
    Client healthy(direct);
    auto resp = healthy.Check(CheckOnlyUpdate(), /*apply=*/false);
    ASSERT_TRUE(resp.ok()) << "round " << round << ": "
                           << resp.status().ToString();
    EXPECT_EQ(resp->verdict, Verdict::kExecuted) << resp->message;
  }
  EXPECT_GE(rig.server->stats().protocol_errors, 1u);
}

}  // namespace
}  // namespace ufilter::net
