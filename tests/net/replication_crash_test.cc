// kill -9 a real follower process mid-replication, restart it on its own
// WAL, and prove it resumes from its recovered epoch — no snapshot refetch
// needed, no epoch applied twice — and converges to verdict parity with
// the primary. This is the process-level acceptance for epoch-stream
// replication: both ends are the actual ufilter_server binary talking the
// real wire protocol.
//
// Requires the ufilter_server binary, located via the UFILTER_SERVER_BIN
// environment variable (set by CMake); skipped when absent.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "fixtures/synthetic.h"
#include "net/client.h"
#include "net/frame.h"

#include "../support/temp_dir.h"

namespace ufilter::net {
namespace {

constexpr int kDepth = 2;
constexpr int kRows = 16;

struct ServerProcess {
  pid_t pid = -1;
  uint16_t port = 0;       // request plane, from "READY <port>"
  uint16_t repl_port = 0;  // replication plane, from "REPL <port>" (if any)

  /// Forks the server binary with the given extra flags and parses its
  /// stdout banner: an optional "REPL <port>" line, then "READY <port>".
  static ServerProcess Launch(const char* bin,
                              const std::vector<std::string>& extra) {
    ServerProcess proc;
    int out[2];
    if (pipe(out) != 0) return proc;
    pid_t pid = fork();
    if (pid < 0) {
      close(out[0]);
      close(out[1]);
      return proc;
    }
    if (pid == 0) {
      dup2(out[1], STDOUT_FILENO);
      close(out[0]);
      close(out[1]);
      std::vector<std::string> args;
      args.push_back(bin);
      args.push_back("--depth=" + std::to_string(kDepth));
      args.push_back("--rows=" + std::to_string(kRows));
      args.push_back("--workers=2");
      for (const std::string& flag : extra) args.push_back(flag);
      std::vector<char*> argv;
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      execv(bin, argv.data());
      _exit(127);  // exec failed
    }
    close(out[1]);
    proc.pid = pid;
    // Read stdout lines until READY (or EOF on a failed start).
    std::string line;
    char c;
    while (read(out[0], &c, 1) == 1) {
      if (c != '\n') {
        line.push_back(c);
        continue;
      }
      if (line.rfind("REPL ", 0) == 0) {
        proc.repl_port = static_cast<uint16_t>(std::atoi(line.c_str() + 5));
      } else if (line.rfind("READY ", 0) == 0) {
        proc.port = static_cast<uint16_t>(std::atoi(line.c_str() + 6));
        break;
      }
      line.clear();
    }
    close(out[0]);
    return proc;
  }

  void Kill9() {
    kill(pid, SIGKILL);
    int wstatus = 0;
    waitpid(pid, &wstatus, 0);
    pid = -1;
  }

  /// SIGTERM and expect a clean drain (exit 0).
  int Terminate() {
    kill(pid, SIGTERM);
    int wstatus = 0;
    waitpid(pid, &wstatus, 0);
    pid = -1;
    return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
  }

  ~ServerProcess() {
    if (pid > 0) Kill9();
  }
};

uint64_t EpochOf(uint16_t port) {
  ClientOptions opts;
  opts.port = port;
  Client client(opts);
  auto stats = client.ServerStats();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return stats.ok() ? stats->commit_epoch : 0;
}

/// Polls the follower's wire-visible commit epoch until it reaches the
/// target. Replication is asynchronous; this is the convergence barrier.
bool WaitForEpoch(uint16_t port, uint64_t target,
                  std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  ClientOptions opts;
  opts.port = port;
  Client client(opts);
  while (std::chrono::steady_clock::now() < deadline) {
    auto stats = client.ServerStats();
    if (stats.ok() && stats->commit_epoch >= target) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

TEST(ReplicationCrashTest, FollowerSurvivesKill9AndResumesFromItsEpoch) {
  const char* bin = std::getenv("UFILTER_SERVER_BIN");
  if (bin == nullptr || *bin == '\0') {
    GTEST_SKIP() << "UFILTER_SERVER_BIN not set";
  }
  test_support::TempDir tmp("repl_crash");
  ASSERT_TRUE(tmp.ok());
  const std::string primary_wal = tmp.path("primary.wal");
  const std::string follower_wal = tmp.path("follower.wal");

  // --- Primary: durable, with a replication plane.
  ServerProcess primary = ServerProcess::Launch(
      bin, {"--wal=" + primary_wal, "--fsync=always", "--repl-port=0"});
  ASSERT_GT(primary.pid, 0);
  ASSERT_GT(primary.port, 0);
  ASSERT_GT(primary.repl_port, 0) << "no REPL banner from --repl-port=0";
  const std::string follow_flag =
      "--follow=127.0.0.1:" + std::to_string(primary.repl_port);

  // --- Follower: durable too, so a restart can resume from its own log.
  ServerProcess follower = ServerProcess::Launch(
      bin, {"--wal=" + follower_wal, "--fsync=always", follow_flag});
  ASSERT_GT(follower.pid, 0);
  ASSERT_GT(follower.port, 0);

  // Commit a first wave on the primary and let the follower catch up.
  {
    ClientOptions opts;
    opts.port = primary.port;
    Client writer(opts);
    for (int64_t key = 1; key <= 6; ++key) {
      auto resp = writer.Check(
          fixtures::ChainReplaceUpdate(1, key, "wave-one"), /*apply=*/true);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      ASSERT_EQ(resp->verdict, Verdict::kExecuted) << resp->message;
    }
  }
  const uint64_t wave_one = EpochOf(primary.port);
  ASSERT_TRUE(WaitForEpoch(follower.port, wave_one, std::chrono::seconds(15)))
      << "follower never reached the primary's epoch " << wave_one;

  // --- kill -9 the follower; the primary keeps committing into the gap.
  follower.Kill9();
  {
    ClientOptions opts;
    opts.port = primary.port;
    Client writer(opts);
    for (int64_t key = 3; key <= 8; ++key) {
      auto resp = writer.Check(
          fixtures::ChainReplaceUpdate(1, key, "wave-two"), /*apply=*/true);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    }
    for (int64_t key = 7; key <= 8; ++key) {
      auto resp =
          writer.Check(fixtures::ChainDeleteUpdate(1, key), /*apply=*/true);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    }
  }
  const uint64_t wave_two = EpochOf(primary.port);
  ASSERT_GT(wave_two, wave_one);

  // --- Restart the follower on its own WAL: it recovers the epochs it had
  // re-logged, resumes the subscription from there, and closes the gap.
  ServerProcess revived = ServerProcess::Launch(
      bin, {"--wal=" + follower_wal, "--fsync=always", follow_flag});
  ASSERT_GT(revived.pid, 0);
  ASSERT_GT(revived.port, 0);
  // Resume, not reset: recovery alone already has wave one on board.
  EXPECT_GE(EpochOf(revived.port), wave_one)
      << "restart lost epochs the follower had durably applied";
  ASSERT_TRUE(WaitForEpoch(revived.port, wave_two, std::chrono::seconds(15)))
      << "revived follower never converged to epoch " << wave_two;

  // --- Verdict parity at the matched epoch: dry-run probes whose answers
  // depend on exactly which keys survived (replaced vs deleted) must agree
  // field-by-field between primary and revived follower.
  {
    ClientOptions popts;
    popts.port = primary.port;
    ClientOptions fopts;
    fopts.port = revived.port;
    Client on_primary(popts);
    Client on_follower(fopts);
    std::vector<std::string> probes;
    for (int64_t key = 1; key <= 8; ++key) {
      probes.push_back(fixtures::ChainReplaceUpdate(1, key, "probe"));
      probes.push_back(fixtures::ChainDeleteUpdate(1, key));
    }
    for (const std::string& update : probes) {
      auto want = on_primary.Check(update, /*apply=*/false);
      auto got = on_follower.Check(update, /*apply=*/false);
      ASSERT_TRUE(want.ok()) << update << ": " << want.status().ToString();
      ASSERT_TRUE(got.ok()) << update << ": " << got.status().ToString();
      EXPECT_EQ(got->verdict, want->verdict) << update;
      EXPECT_EQ(got->status_code, want->status_code) << update;
      EXPECT_EQ(got->rows_affected, want->rows_affected) << update;
    }

    // The follower is read-only: applies bounce with a redirect naming the
    // primary, and its epoch does not move.
    const uint64_t before = EpochOf(revived.port);
    auto redirect = on_follower.Check(
        fixtures::ChainReplaceUpdate(1, 1, "denied"), /*apply=*/true);
    ASSERT_TRUE(redirect.ok()) << redirect.status().ToString();
    EXPECT_EQ(redirect->verdict, Verdict::kRedirectToPrimary);
    EXPECT_NE(redirect->message.find(std::to_string(primary.repl_port)),
              std::string::npos)
        << redirect->message;
    EXPECT_EQ(EpochOf(revived.port), before);
  }

  // Clean shutdown on both ends: SIGTERM drains and exits 0.
  EXPECT_EQ(revived.Terminate(), 0);
  EXPECT_EQ(primary.Terminate(), 0);
}

}  // namespace
}  // namespace ufilter::net
