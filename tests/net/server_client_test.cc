// End-to-end tests of the network front end against a live TCP server:
// verdict parity with the in-process checker, deadline admission /
// queue-purge behavior, load shedding with retry-after, graceful drain,
// per-connection protocol-error isolation, and stats over the wire.
#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../support/temp_dir.h"
#include "fixtures/bookdb.h"
#include "fixtures/synthetic.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace ufilter::net {
namespace {

using check::CheckOptions;
using check::CheckOutcome;
using check::CheckReport;
using check::UFilter;
using relational::Database;

struct Instance {
  std::unique_ptr<Database> db;
  std::unique_ptr<UFilter> uf;
};

Instance MakeBookInstance() {
  Instance inst;
  auto db = fixtures::MakeBookDatabase();
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  inst.db = std::move(*db);
  auto uf = UFilter::Create(inst.db.get(), fixtures::BookViewQuery());
  EXPECT_TRUE(uf.ok()) << uf.status().ToString();
  inst.uf = std::move(*uf);
  return inst;
}

Instance MakeChainInstance(int depth, int rows) {
  Instance inst;
  auto db = fixtures::MakeChainDatabase(depth, rows,
                                        relational::DeletePolicy::kCascade);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  inst.db = std::move(*db);
  auto uf = UFilter::Create(inst.db.get(), fixtures::ChainViewQuery(depth));
  EXPECT_TRUE(uf.ok()) << uf.status().ToString();
  inst.uf = std::move(*uf);
  return inst;
}

Verdict ExpectedVerdict(CheckOutcome outcome) {
  switch (outcome) {
    case CheckOutcome::kExecuted:
      return Verdict::kExecuted;
    case CheckOutcome::kInvalid:
      return Verdict::kInvalid;
    case CheckOutcome::kUntranslatable:
      return Verdict::kUntranslatable;
    case CheckOutcome::kDataConflict:
      return Verdict::kDataConflict;
    case CheckOutcome::kNotRun:
      return Verdict::kNotRun;
    case CheckOutcome::kDeadlineExceeded:
      return Verdict::kDeadlineExceeded;
  }
  return Verdict::kError;
}

ClientOptions ClientFor(const Server& server) {
  ClientOptions opts;
  opts.port = server.port();
  return opts;
}

/// Frame-level connection for tests that need pipelining or bad bytes —
/// things the Client (correctly) refuses to do.
struct RawConn {
  int fd = -1;
  FrameReader frames;

  static RawConn Open(uint16_t port, bool send_magic = true) {
    RawConn conn;
    auto fd = ConnectTcp("127.0.0.1", port, std::chrono::milliseconds(1000));
    EXPECT_TRUE(fd.ok()) << fd.status().ToString();
    conn.fd = *fd;
    if (send_magic) {
      Status st = SendAll(conn.fd, kNetMagic, kNetMagicLen,
                          std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(1000));
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    return conn;
  }

  Status Send(const std::string& payload) {
    std::string frame = FramePayload(payload);
    return SendAll(fd, frame.data(), frame.size(),
                   std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(2000));
  }

  Result<std::string> Recv(std::chrono::milliseconds timeout =
                               std::chrono::milliseconds(5000)) {
    auto deadline = std::chrono::steady_clock::now() + timeout;
    char buf[4096];
    while (true) {
      auto next = frames.Next();
      if (!next.ok()) return next.status();
      if (next->has_value()) return *std::move(*next);
      auto got = RecvSome(fd, buf, sizeof(buf), deadline);
      if (!got.ok()) return got.status();
      frames.Feed(buf, *got);
    }
  }

  void Close() {
    if (fd >= 0) {
      CloseFd(fd);
      fd = -1;
    }
  }
  ~RawConn() { Close(); }
};

// --- Verdict parity -------------------------------------------------------

TEST(ServerClientTest, CheckVerdictsMatchInProcessBaseline) {
  std::vector<std::string> updates;
  for (int u = 1; u <= 13; ++u) updates.push_back(fixtures::PaperUpdate(u));
  updates.push_back("THIS IS NOT AN UPDATE");

  CheckOptions dry;
  dry.apply = false;

  Instance baseline = MakeBookInstance();
  std::vector<CheckReport> expected;
  for (const std::string& u : updates) {
    expected.push_back(baseline.uf->Check(u, dry));
  }

  Instance inst = MakeBookInstance();
  ServerOptions opts;
  opts.service.worker_threads = 2;
  auto server = Server::Start(inst.uf.get(), opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Client client(ClientFor(**server));
  for (size_t i = 0; i < updates.size(); ++i) {
    auto resp = client.Check(updates[i], /*apply=*/false);
    ASSERT_TRUE(resp.ok()) << updates[i] << ": " << resp.status().ToString();
    EXPECT_EQ(resp->verdict, ExpectedVerdict(expected[i].outcome))
        << updates[i];
    EXPECT_EQ(resp->status_code,
              static_cast<uint8_t>(expected[i].error.code()))
        << updates[i];
    EXPECT_EQ(resp->rows_affected, expected[i].rows_affected) << updates[i];
  }
  EXPECT_EQ(client.metrics().requests, updates.size());
  EXPECT_EQ(client.metrics().indeterminate, 0u);
}

TEST(ServerClientTest, AppliesExecuteOverTheWire) {
  Instance inst = MakeChainInstance(3, 32);
  ServerOptions opts;
  opts.service.worker_threads = 2;
  auto server = Server::Start(inst.uf.get(), opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Client client(ClientFor(**server));
  auto resp =
      client.Check(fixtures::ChainReplaceUpdate(1, 5, "net-applied"), true);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->verdict, Verdict::kExecuted) << resp->message;
  EXPECT_GT(resp->rows_affected, 0);

  auto stats = client.ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->writer_lane, 1u);
  EXPECT_GE(stats->commit_epoch, 1u);
}

// --- Deadlines ------------------------------------------------------------

TEST(ServerClientTest, ExpiredDeadlineRejectedAtAdmission) {
  Instance inst = MakeBookInstance();
  auto server = Server::Start(inst.uf.get());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  RawConn conn = RawConn::Open((*server)->port());
  CheckRequestMsg req;
  req.request_id = 1;
  req.deadline_ms = 0;  // expired the moment the server rebases it
  req.apply = true;     // still safe: admission certifies nothing ran
  req.update_text = fixtures::PaperUpdate(1);
  ASSERT_TRUE(conn.Send(EncodeCheckRequest(req)).ok());

  auto raw = conn.Recv();
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto resp = DecodeCheckResponse(*raw);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->request_id, 1u);
  EXPECT_EQ(resp->verdict, Verdict::kDeadlineExceeded);

  EXPECT_GE((*server)->stats().admission_expired, 1u);
  EXPECT_GE((*server)->service().Snapshot().deadline_expired, 1u);
}

TEST(ServerClientTest, OverloadShedsAndPurgesQueuedDeadlines) {
  // One worker that holds the writer lane 300ms per apply, a queue of one:
  // pipelined applies with 40ms budgets must come back shed (queue full
  // past the budget) or deadline-expired (purged before execution) — and
  // the server must stay up and answer every single one.
  Instance inst = MakeChainInstance(2, 16);
  ServerOptions opts;
  opts.service.worker_threads = 1;
  opts.service.queue_capacity = 1;
  opts.service.writer_lane_hold_ms_for_testing = 300;
  auto server = Server::Start(inst.uf.get(), opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  constexpr int kRequests = 8;
  RawConn conn = RawConn::Open((*server)->port());
  for (int i = 0; i < kRequests; ++i) {
    CheckRequestMsg req;
    req.request_id = static_cast<uint64_t>(i + 1);
    req.deadline_ms = 40;
    req.apply = true;
    req.update_text = fixtures::ChainReplaceUpdate(1, 1, "storm");
    ASSERT_TRUE(conn.Send(EncodeCheckRequest(req)).ok());
  }

  int shed = 0, expired = 0, executed = 0;
  for (int i = 0; i < kRequests; ++i) {
    auto raw = conn.Recv(std::chrono::milliseconds(10000));
    ASSERT_TRUE(raw.ok()) << "response " << i << ": "
                          << raw.status().ToString();
    auto resp = DecodeCheckResponse(*raw);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    switch (resp->verdict) {
      case Verdict::kShed:
        ++shed;
        EXPECT_GT(resp->retry_after_ms, 0u);
        break;
      case Verdict::kDeadlineExceeded:
        ++expired;
        break;
      case Verdict::kExecuted:
        ++executed;
        break;
      default:
        FAIL() << "unexpected verdict " << VerdictName(resp->verdict) << ": "
               << resp->message;
    }
  }
  EXPECT_EQ(shed + expired + executed, kRequests);
  // The first request executes; with a 300ms hold against 40ms budgets at
  // least one later request must have been refused one way or the other.
  EXPECT_GE(shed + expired, 1) << "shed=" << shed << " expired=" << expired;

  // Both forms of refusal are observable in the service counters.
  auto stats = (*server)->service().Snapshot();
  EXPECT_GE(stats.shed + stats.deadline_expired, 1u);
}

// --- Graceful drain -------------------------------------------------------

TEST(ServerClientTest, DrainFinishesInFlightAndRejectsNewWork) {
  Instance inst = MakeChainInstance(2, 16);
  ServerOptions opts;
  opts.service.worker_threads = 1;
  opts.service.writer_lane_hold_ms_for_testing = 400;
  auto server = Server::Start(inst.uf.get(), opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // A slow apply in flight keeps the drain in its grace loop.
  RawConn busy = RawConn::Open((*server)->port());
  CheckRequestMsg slow;
  slow.request_id = 1;
  slow.apply = true;
  slow.update_text = fixtures::ChainReplaceUpdate(1, 2, "before-drain");
  ASSERT_TRUE(busy.Send(EncodeCheckRequest(slow)).ok());

  // A second connection established *before* the listener closes.
  RawConn late = RawConn::Open((*server)->port());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::thread drainer([&] { (*server)->Drain(); });
  while (!(*server)->draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // New work on the surviving connection: refused with kDraining.
  CheckRequestMsg rejected;
  rejected.request_id = 2;
  rejected.update_text = fixtures::ChainReplaceUpdate(1, 3, "during-drain");
  Verdict late_verdict = Verdict::kError;
  if (late.Send(EncodeCheckRequest(rejected)).ok()) {
    auto raw = late.Recv();
    if (raw.ok()) {
      auto resp = DecodeCheckResponse(*raw);
      ASSERT_TRUE(resp.ok()) << resp.status().ToString();
      late_verdict = resp->verdict;
    }
  }

  // The in-flight apply still completes and its response is flushed.
  auto raw = busy.Recv(std::chrono::milliseconds(10000));
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto resp = DecodeCheckResponse(*raw);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->request_id, 1u);
  EXPECT_EQ(resp->verdict, Verdict::kExecuted) << resp->message;

  drainer.join();
  if (late_verdict != Verdict::kError) {
    EXPECT_EQ(late_verdict, Verdict::kDraining);
    EXPECT_GE((*server)->stats().draining_rejects, 1u);
  }

  // The listener is gone: new connections are refused.
  auto refused =
      ConnectTcp("127.0.0.1", (*server)->port(), std::chrono::milliseconds(200));
  EXPECT_FALSE(refused.ok());
}

// --- Protocol damage ------------------------------------------------------

TEST(ServerClientTest, BadMagicDropsOnlyThatConnection) {
  Instance inst = MakeBookInstance();
  auto server = Server::Start(inst.uf.get());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  {
    RawConn bad = RawConn::Open((*server)->port(), /*send_magic=*/false);
    const char junk[] = "NOTMAGIC";
    ASSERT_TRUE(SendAll(bad.fd, junk, 8,
                        std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(1000))
                    .ok());
    // The server hangs up on us without a response.
    char buf[16];
    auto got = RecvSome(bad.fd, buf, sizeof(buf),
                        std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(5000));
    EXPECT_FALSE(got.ok());
    EXPECT_TRUE(got.status().IsUnavailable()) << got.status().ToString();
  }

  // Well-behaved clients are unaffected.
  Client client(ClientFor(**server));
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GE((*server)->stats().protocol_errors, 1u);
}

TEST(ServerClientTest, StatsTravelOverTheWire) {
  Instance inst = MakeBookInstance();
  auto server = Server::Start(inst.uf.get());
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Client client(ClientFor(**server));
  for (int i = 0; i < 3; ++i) {
    auto resp = client.Check(fixtures::PaperUpdate(1), /*apply=*/false);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  }
  auto stats = client.ServerStats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->submitted, 3u);
  EXPECT_GE(stats->completed, 3u);
  EXPECT_GE(stats->connections_accepted, 1u);
  EXPECT_EQ(stats->protocol_errors, 0u);
  // The queue-wait percentiles come from the always-on histogram: after
  // three pops they must be real (nonzero) readings.
  EXPECT_GT(stats->queue_wait_p99_ns, 0u);
  EXPECT_LE(stats->queue_wait_p50_ns, stats->queue_wait_p99_ns);
}

// --- Full registry over the wire -----------------------------------------

// The parity acceptance: a remote Client::Metrics() scrape must agree with
// the in-process registry Collect() and with CheckServiceStats — including
// the counters that used to be wire-invisible (WAL, columnar, plan cache,
// MVCC) and the latency histograms.
TEST(ServerClientTest, MetricsParityOverWire) {
  test_support::TempDir tmp("net_metrics");
  ASSERT_TRUE(tmp.ok());
  Instance inst = MakeChainInstance(3, 32);
  ServerOptions opts;
  opts.service.worker_threads = 2;
  opts.service.durability.wal_path = tmp.path("parity.wal");
  // Fsync per commit so wal_fsyncs is deterministically nonzero at scrape
  // time (kGroup would defer it to the shutdown barrier).
  opts.service.durability.fsync_policy = relational::FsyncPolicy::kAlways;
  auto server = Server::Start(inst.uf.get(), opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE((*server)->service().durability_status().ok());

  Client client(ClientFor(**server));
  // Traffic that exercises every counter family: checks (columnar scans,
  // plan cache) and applies (writer lane, WAL records + fsyncs). The
  // i % 3 cycle repeats each delete text once — the plan-cache key is the
  // whitespace-normalized text, so only an exact repeat can hit.
  for (int i = 0; i < 6; ++i) {
    auto resp = client.Check(fixtures::ChainDeleteUpdate(2, i % 3), false);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->verdict, Verdict::kExecuted) << resp->message;
  }
  for (int i = 0; i < 2; ++i) {
    auto resp = client.Check(
        fixtures::ChainReplaceUpdate(2, i, "metrics-apply"), true);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->verdict, Verdict::kExecuted) << resp->message;
  }

  auto wire = client.Metrics();
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  obs::RegistrySnapshot remote = SnapshotFromMetrics(*wire);
  obs::RegistrySnapshot local = (*server)->service().registry().Collect();
  auto stats = (*server)->service().Snapshot();

  // Every local series crossed the wire (the scrape is the full registry).
  for (const obs::MetricSample& l : local) {
    ASSERT_NE(wire->Find(l.name), nullptr) << l.name;
  }

  // Monotonic counters: the wire value was read between our last request
  // and the local Collect(), so local >= wire >= the known traffic floor.
  auto wire_value = [&wire](const char* name) {
    const WireMetric* m = wire->Find(name);
    EXPECT_NE(m, nullptr) << name;
    return m == nullptr ? 0 : m->value;
  };
  struct FloorCheck {
    const char* name;
    uint64_t floor;
    uint64_t local;
  };
  const FloorCheck checks[] = {
      {"service_submitted", 8, stats.submitted},
      {"service_completed", 8, stats.completed},
      {"service_fast_path", 6, stats.fast_path},
      {"service_writer_lane", 2, stats.writer_lane},
      {"wal_records", 2, stats.wal_records},
      {"wal_fsyncs", 1, stats.wal_fsyncs},
      {"wal_bytes", 1, stats.wal_bytes},
      {"columnar_builds", 1, stats.columnar_builds},
      {"columnar_scan_rows", 1, stats.columnar_scan_rows},
      {"plan_cache_hits", 1, stats.plan_cache.hits},
      {"plan_cache_misses", 1, stats.plan_cache.misses},
      {"mvcc_snapshots_opened", 8, stats.snapshots_opened},
  };
  for (const FloorCheck& c : checks) {
    uint64_t wired = wire_value(c.name);
    EXPECT_GE(wired, c.floor) << c.name;
    EXPECT_GE(c.local, wired) << c.name;  // the stats view agrees
  }
  // Gauges match the database's current state exactly (quiescent now).
  EXPECT_EQ(wire_value("db_commit_epoch"), stats.commit_epoch);

  // The latency histogram crossed the wire with its full shape: count
  // covers all 8 requests and percentile math works on the remote copy.
  const obs::MetricSample* lat = obs::FindSample(remote, "check_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_GE(lat->hist.count, 8u);
  EXPECT_GT(lat->hist.Percentile(50), 0u);
  EXPECT_LE(lat->hist.Percentile(50), lat->hist.Percentile(99));
  const obs::MetricSample* local_lat =
      obs::FindSample(local, "check_latency_ns");
  ASSERT_NE(local_lat, nullptr);
  EXPECT_EQ(local_lat->hist.count, lat->hist.count);
  EXPECT_EQ(local_lat->hist.sum, lat->hist.sum);
  EXPECT_EQ(local_lat->hist.max, lat->hist.max);

  // Server transport counters live in the same registry.
  EXPECT_GE(wire_value("server_requests"), 8u);  // check requests only
  EXPECT_GE(wire_value("server_connections_accepted"), 1u);
}

}  // namespace
}  // namespace ufilter::net
