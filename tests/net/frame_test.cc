// Wire codec strictness and frame parsing: these bytes arrive off a
// socket from arbitrary peers, so every decoder must treat truncation,
// trailing garbage, type confusion and bit flips as ParseError (or "need
// more bytes"), never as UB and never as a silently different message.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>

namespace ufilter::net {
namespace {

CheckRequestMsg SampleRequest() {
  CheckRequestMsg req;
  req.request_id = 0x1122334455667788ull;
  req.deadline_ms = 250;
  req.apply = true;
  req.strategy = 1;
  req.update_text = "FOR $b IN document(\"default\")/book DELETE $b";
  return req;
}

CheckResponseMsg SampleResponse() {
  CheckResponseMsg resp;
  resp.request_id = 42;
  resp.verdict = Verdict::kDataConflict;
  resp.status_code = 7;
  resp.message = "side effect on another view row";
  resp.rows_affected = -3;
  resp.retry_after_ms = 0;
  return resp;
}

TEST(FrameCodecTest, CheckRequestRoundTrip) {
  CheckRequestMsg req = SampleRequest();
  auto got = DecodeCheckRequest(EncodeCheckRequest(req));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->request_id, req.request_id);
  EXPECT_EQ(got->deadline_ms, req.deadline_ms);
  EXPECT_EQ(got->apply, req.apply);
  EXPECT_EQ(got->strategy, req.strategy);
  EXPECT_EQ(got->update_text, req.update_text);
}

TEST(FrameCodecTest, CheckResponseRoundTrip) {
  CheckResponseMsg resp = SampleResponse();
  auto got = DecodeCheckResponse(EncodeCheckResponse(resp));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->request_id, resp.request_id);
  EXPECT_EQ(got->verdict, resp.verdict);
  EXPECT_EQ(got->status_code, resp.status_code);
  EXPECT_EQ(got->message, resp.message);
  EXPECT_EQ(got->rows_affected, resp.rows_affected);
  EXPECT_EQ(got->retry_after_ms, resp.retry_after_ms);
}

TEST(FrameCodecTest, PingPongAndStatsRoundTrip) {
  auto ping = DecodePingPong(EncodePing(99));
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(*ping, 99u);
  auto pong = DecodePingPong(EncodePong(100));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, 100u);

  StatsMsg stats;
  stats.submitted = 1;
  stats.completed = 2;
  stats.fast_path = 3;
  stats.writer_lane = 4;
  stats.shed = 5;
  stats.deadline_expired = 6;
  stats.queue_high_water = 7;
  stats.commit_epoch = 8;
  stats.wal_records = 9;
  stats.connections_accepted = 10;
  stats.protocol_errors = 11;
  stats.draining_rejects = 12;
  auto got = DecodeStatsResponse(EncodeStatsResponse(stats));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->submitted, 1u);
  EXPECT_EQ(got->deadline_expired, 6u);
  EXPECT_EQ(got->queue_high_water, 7u);
  EXPECT_EQ(got->draining_rejects, 12u);
}

TEST(FrameCodecTest, PeekTypeIdentifiesMessages) {
  auto t = PeekType(EncodeCheckRequest(SampleRequest()));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, MsgType::kCheckRequest);
  EXPECT_FALSE(PeekType("").ok());
  EXPECT_FALSE(PeekType(std::string(1, '\x63')).ok());  // unknown type
}

TEST(FrameCodecTest, EveryTruncationIsParseError) {
  const std::string payloads[] = {
      EncodeCheckRequest(SampleRequest()),
      EncodeCheckResponse(SampleResponse()),
      EncodePing(7),
      EncodeStatsResponse(StatsMsg{}),
  };
  for (const std::string& p : payloads) {
    for (size_t cut = 0; cut < p.size(); ++cut) {
      std::string prefix = p.substr(0, cut);
      EXPECT_FALSE(DecodeCheckRequest(prefix).ok());
      EXPECT_FALSE(DecodeCheckResponse(prefix).ok());
      EXPECT_FALSE(DecodePingPong(prefix).ok());
      EXPECT_FALSE(DecodeStatsResponse(prefix).ok());
    }
  }
}

TEST(FrameCodecTest, TrailingGarbageIsParseError) {
  std::string p = EncodeCheckRequest(SampleRequest()) + "x";
  auto got = DecodeCheckRequest(p);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsParseError()) << got.status().ToString();
}

TEST(FrameCodecTest, TypeConfusionIsParseError) {
  // A well-formed request fed to the response decoder (and vice versa)
  // must fail on the type byte, not misparse the remaining fields.
  EXPECT_FALSE(DecodeCheckResponse(EncodeCheckRequest(SampleRequest())).ok());
  EXPECT_FALSE(DecodeCheckRequest(EncodeCheckResponse(SampleResponse())).ok());
  EXPECT_FALSE(DecodePingPong(EncodeStatsRequest()).ok());
  EXPECT_FALSE(DecodeStatsResponse(EncodePong(1)).ok());
}

TEST(FrameCodecTest, OutOfRangeEnumsAreParseError) {
  CheckRequestMsg req = SampleRequest();
  req.strategy = 3;  // past kOutside
  EXPECT_FALSE(DecodeCheckRequest(EncodeCheckRequest(req)).ok());

  // Patch the verdict byte past kError: offset = type(1) + id(8).
  std::string p = EncodeCheckResponse(SampleResponse());
  p[1 + 8] = '\x2a';
  EXPECT_FALSE(DecodeCheckResponse(p).ok());
}

TEST(FrameReaderTest, ByteAtATimeReassemblesMultipleFrames) {
  std::string stream;
  stream.append(kNetMagic, kNetMagicLen);
  const std::string payload_a = EncodeCheckRequest(SampleRequest());
  const std::string payload_b = EncodePing(5);
  stream += FramePayload(payload_a);
  stream += FramePayload(payload_b);

  FrameReader reader(/*expect_magic=*/true);
  std::vector<std::string> got;
  for (char c : stream) {
    reader.Feed(&c, 1);
    while (true) {
      auto next = reader.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      got.push_back(**next);
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], payload_a);
  EXPECT_EQ(got[1], payload_b);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, TornFrameIsJustIncomplete) {
  // A frame cut mid-length-prefix (exactly what the chaos proxy does) is
  // "need more bytes", not an error — the error is the hangup that
  // follows, surfaced by the socket layer.
  std::string frame = FramePayload(EncodePing(1));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameReader reader;
    reader.Feed(frame.data(), cut);
    auto next = reader.Next();
    ASSERT_TRUE(next.ok()) << "cut=" << cut;
    EXPECT_FALSE(next->has_value()) << "cut=" << cut;
  }
}

TEST(FrameReaderTest, BadMagicIsParseError) {
  FrameReader reader(/*expect_magic=*/true);
  std::string junk = "GET / HT";  // a confused HTTP client
  reader.Feed(junk.data(), junk.size());
  auto next = reader.Next();
  EXPECT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsParseError());
}

TEST(FrameReaderTest, EverysingleBitFlipIsDetected) {
  // CRC32 catches all single-bit errors; a flipped length prefix either
  // fails the CRC, waits for bytes that never come, or is rejected as
  // absurd. No flip may ever yield a successfully parsed *different*
  // payload.
  const std::string payload = EncodeCheckRequest(SampleRequest());
  const std::string frame = FramePayload(payload);
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      FrameReader reader;
      reader.Feed(damaged.data(), damaged.size());
      auto next = reader.Next();
      if (!next.ok()) continue;                // detected: CRC / length
      if (!next->has_value()) continue;        // waiting for more bytes
      FAIL() << "bit flip at byte " << byte << " bit " << bit
             << " produced a successfully parsed frame";
    }
  }
}

TEST(FrameReaderTest, OversizedLengthIsRejectedImmediately) {
  FrameReader reader(/*expect_magic=*/false, /*max_frame_bytes=*/1024);
  std::string header;
  uint32_t len = 1u << 30;
  for (int i = 0; i < 4; ++i) header.push_back(char((len >> (8 * i)) & 0xFF));
  header.append(4, '\0');  // CRC placeholder; never read
  reader.Feed(header.data(), header.size());
  auto next = reader.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsParseError());
}

TEST(VerdictTest, RetrySafetyClassification) {
  EXPECT_TRUE(VerdictIsRetrySafe(Verdict::kShed));
  EXPECT_TRUE(VerdictIsRetrySafe(Verdict::kDraining));
  EXPECT_TRUE(VerdictIsRetrySafe(Verdict::kDeadlineExceeded));
  EXPECT_FALSE(VerdictIsRetrySafe(Verdict::kExecuted));
  EXPECT_FALSE(VerdictIsRetrySafe(Verdict::kError));
  EXPECT_STREQ(VerdictName(Verdict::kShed), "shed");
}

}  // namespace
}  // namespace ufilter::net
