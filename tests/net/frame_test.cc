// Wire codec strictness and frame parsing: these bytes arrive off a
// socket from arbitrary peers, so every decoder must treat truncation,
// trailing garbage, type confusion and bit flips as ParseError (or "need
// more bytes"), never as UB and never as a silently different message.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>

namespace ufilter::net {
namespace {

CheckRequestMsg SampleRequest() {
  CheckRequestMsg req;
  req.request_id = 0x1122334455667788ull;
  req.deadline_ms = 250;
  req.apply = true;
  req.strategy = 1;
  req.update_text = "FOR $b IN document(\"default\")/book DELETE $b";
  return req;
}

CheckResponseMsg SampleResponse() {
  CheckResponseMsg resp;
  resp.request_id = 42;
  resp.verdict = Verdict::kDataConflict;
  resp.status_code = 7;
  resp.message = "side effect on another view row";
  resp.rows_affected = -3;
  resp.retry_after_ms = 0;
  return resp;
}

TEST(FrameCodecTest, CheckRequestRoundTrip) {
  CheckRequestMsg req = SampleRequest();
  auto got = DecodeCheckRequest(EncodeCheckRequest(req));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->request_id, req.request_id);
  EXPECT_EQ(got->deadline_ms, req.deadline_ms);
  EXPECT_EQ(got->apply, req.apply);
  EXPECT_EQ(got->strategy, req.strategy);
  EXPECT_EQ(got->update_text, req.update_text);
}

TEST(FrameCodecTest, CheckResponseRoundTrip) {
  CheckResponseMsg resp = SampleResponse();
  auto got = DecodeCheckResponse(EncodeCheckResponse(resp));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->request_id, resp.request_id);
  EXPECT_EQ(got->verdict, resp.verdict);
  EXPECT_EQ(got->status_code, resp.status_code);
  EXPECT_EQ(got->message, resp.message);
  EXPECT_EQ(got->rows_affected, resp.rows_affected);
  EXPECT_EQ(got->retry_after_ms, resp.retry_after_ms);
}

TEST(FrameCodecTest, PingPongAndStatsRoundTrip) {
  auto ping = DecodePingPong(EncodePing(99));
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(*ping, 99u);
  auto pong = DecodePingPong(EncodePong(100));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, 100u);

  StatsMsg stats;
  stats.submitted = 1;
  stats.completed = 2;
  stats.fast_path = 3;
  stats.writer_lane = 4;
  stats.shed = 5;
  stats.deadline_expired = 6;
  stats.queue_high_water = 7;
  stats.commit_epoch = 8;
  stats.wal_records = 9;
  stats.connections_accepted = 10;
  stats.protocol_errors = 11;
  stats.draining_rejects = 12;
  stats.queue_wait_p50_ns = 13;
  stats.queue_wait_p99_ns = 14;
  auto got = DecodeStatsResponse(EncodeStatsResponse(stats));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->submitted, 1u);
  EXPECT_EQ(got->deadline_expired, 6u);
  EXPECT_EQ(got->queue_high_water, 7u);
  EXPECT_EQ(got->draining_rejects, 12u);
  EXPECT_EQ(got->queue_wait_p50_ns, 13u);
  EXPECT_EQ(got->queue_wait_p99_ns, 14u);
}

obs::RegistrySnapshot SampleRegistry() {
  obs::RegistrySnapshot snap;
  obs::MetricSample counter;
  counter.name = "service_completed";
  counter.kind = obs::MetricKind::kCounter;
  counter.value = 12345;
  snap.push_back(counter);
  obs::MetricSample gauge;
  gauge.name = "db_commit_epoch";
  gauge.kind = obs::MetricKind::kGauge;
  gauge.value = 9;
  snap.push_back(gauge);
  obs::MetricSample hist;
  hist.name = "check_latency_ns";
  hist.kind = obs::MetricKind::kHistogram;
  hist.hist.buckets[0] = 3;
  hist.hist.buckets[17] = 5;
  hist.hist.buckets[obs::kHistogramBuckets - 1] = 1;
  hist.hist.count = 9;
  hist.hist.sum = 777777;
  hist.hist.max = 650000;
  snap.push_back(hist);
  return snap;
}

TEST(FrameCodecTest, MetricsRoundTripIsLossless) {
  MetricsMsg msg = MetricsFromSnapshot(SampleRegistry());
  // Sparse histogram transport: only the three populated buckets travel.
  const WireMetric* h = msg.Find("check_latency_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->hist_buckets.size(), 3u);

  auto got = DecodeMetricsResponse(EncodeMetricsResponse(msg));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  obs::RegistrySnapshot back = SnapshotFromMetrics(*got);
  obs::RegistrySnapshot orig = SampleRegistry();
  ASSERT_EQ(back.size(), orig.size());
  for (size_t i = 0; i < orig.size(); ++i) {
    const obs::MetricSample* b = obs::FindSample(back, orig[i].name);
    ASSERT_NE(b, nullptr) << orig[i].name;
    EXPECT_EQ(b->kind, orig[i].kind);
    EXPECT_EQ(b->value, orig[i].value);
    EXPECT_EQ(b->hist.buckets, orig[i].hist.buckets);
    EXPECT_EQ(b->hist.count, orig[i].hist.count);
    EXPECT_EQ(b->hist.sum, orig[i].hist.sum);
    EXPECT_EQ(b->hist.max, orig[i].hist.max);
  }
  // Percentiles survive the wire: remote rendering equals in-process.
  const obs::MetricSample* lat = obs::FindSample(back, "check_latency_ns");
  EXPECT_EQ(lat->hist.Percentile(99),
            obs::FindSample(orig, "check_latency_ns")->hist.Percentile(99));
  EXPECT_EQ(got->Find("missing"), nullptr);
}

TEST(FrameCodecTest, MetricsDecoderRejectsHostileInput) {
  MetricsMsg msg = MetricsFromSnapshot(SampleRegistry());
  std::string p = EncodeMetricsResponse(msg);
  // Bucket index past the histogram width: find the first bucket-index
  // byte of the histogram metric and poke it out of range.
  for (size_t i = 0; i + 1 < p.size(); ++i) {
    std::string damaged = p;
    damaged[i] = '\x7f';  // 127 >= kHistogramBuckets anywhere it lands
    auto got = DecodeMetricsResponse(damaged);
    if (got.ok()) {
      // The flip must at least not have produced an out-of-range bucket.
      for (const WireMetric& m : got->metrics) {
        for (const auto& [idx, count] : m.hist_buckets) {
          EXPECT_LT(idx, obs::kHistogramBuckets);
          (void)count;
        }
      }
    }
  }
  // A kind byte past kHistogram is a ParseError, not a mystery metric.
  WireMetric bad;
  bad.name = "x";
  bad.kind = 3;
  MetricsMsg bad_msg;
  bad_msg.metrics.push_back(bad);
  EXPECT_FALSE(DecodeMetricsResponse(EncodeMetricsResponse(bad_msg)).ok());
}

TEST(FrameCodecTest, PeekTypeIdentifiesMessages) {
  auto t = PeekType(EncodeCheckRequest(SampleRequest()));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, MsgType::kCheckRequest);
  auto mreq = PeekType(EncodeMetricsRequest());
  ASSERT_TRUE(mreq.ok());
  EXPECT_EQ(*mreq, MsgType::kMetricsRequest);
  auto mresp = PeekType(EncodeMetricsResponse(MetricsMsg{}));
  ASSERT_TRUE(mresp.ok());
  EXPECT_EQ(*mresp, MsgType::kMetricsResponse);
  EXPECT_FALSE(PeekType("").ok());
  EXPECT_FALSE(PeekType(std::string(1, '\x63')).ok());  // unknown type
}

TEST(FrameCodecTest, EveryTruncationIsParseError) {
  const std::string payloads[] = {
      EncodeCheckRequest(SampleRequest()),
      EncodeCheckResponse(SampleResponse()),
      EncodePing(7),
      EncodeStatsResponse(StatsMsg{}),
      EncodeMetricsResponse(MetricsFromSnapshot(SampleRegistry())),
  };
  for (const std::string& p : payloads) {
    for (size_t cut = 0; cut < p.size(); ++cut) {
      std::string prefix = p.substr(0, cut);
      EXPECT_FALSE(DecodeCheckRequest(prefix).ok());
      EXPECT_FALSE(DecodeCheckResponse(prefix).ok());
      EXPECT_FALSE(DecodePingPong(prefix).ok());
      EXPECT_FALSE(DecodeStatsResponse(prefix).ok());
      EXPECT_FALSE(DecodeMetricsResponse(prefix).ok());
    }
  }
}

TEST(FrameCodecTest, TrailingGarbageIsParseError) {
  std::string p = EncodeCheckRequest(SampleRequest()) + "x";
  auto got = DecodeCheckRequest(p);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsParseError()) << got.status().ToString();
}

TEST(FrameCodecTest, TypeConfusionIsParseError) {
  // A well-formed request fed to the response decoder (and vice versa)
  // must fail on the type byte, not misparse the remaining fields.
  EXPECT_FALSE(DecodeCheckResponse(EncodeCheckRequest(SampleRequest())).ok());
  EXPECT_FALSE(DecodeCheckRequest(EncodeCheckResponse(SampleResponse())).ok());
  EXPECT_FALSE(DecodePingPong(EncodeStatsRequest()).ok());
  EXPECT_FALSE(DecodeStatsResponse(EncodePong(1)).ok());
}

TEST(FrameCodecTest, OutOfRangeEnumsAreParseError) {
  CheckRequestMsg req = SampleRequest();
  req.strategy = 3;  // past kOutside
  EXPECT_FALSE(DecodeCheckRequest(EncodeCheckRequest(req)).ok());

  // Patch the verdict byte past kError: offset = type(1) + id(8).
  std::string p = EncodeCheckResponse(SampleResponse());
  p[1 + 8] = '\x2a';
  EXPECT_FALSE(DecodeCheckResponse(p).ok());
}

TEST(FrameReaderTest, ByteAtATimeReassemblesMultipleFrames) {
  std::string stream;
  stream.append(kNetMagic, kNetMagicLen);
  const std::string payload_a = EncodeCheckRequest(SampleRequest());
  const std::string payload_b = EncodePing(5);
  stream += FramePayload(payload_a);
  stream += FramePayload(payload_b);

  FrameReader reader(/*expect_magic=*/true);
  std::vector<std::string> got;
  for (char c : stream) {
    reader.Feed(&c, 1);
    while (true) {
      auto next = reader.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next->has_value()) break;
      got.push_back(**next);
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], payload_a);
  EXPECT_EQ(got[1], payload_b);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, TornFrameIsJustIncomplete) {
  // A frame cut mid-length-prefix (exactly what the chaos proxy does) is
  // "need more bytes", not an error — the error is the hangup that
  // follows, surfaced by the socket layer.
  std::string frame = FramePayload(EncodePing(1));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    FrameReader reader;
    reader.Feed(frame.data(), cut);
    auto next = reader.Next();
    ASSERT_TRUE(next.ok()) << "cut=" << cut;
    EXPECT_FALSE(next->has_value()) << "cut=" << cut;
  }
}

TEST(FrameReaderTest, BadMagicIsParseError) {
  FrameReader reader(/*expect_magic=*/true);
  std::string junk = "GET / HT";  // a confused HTTP client
  reader.Feed(junk.data(), junk.size());
  auto next = reader.Next();
  EXPECT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsParseError());
}

TEST(FrameReaderTest, EverysingleBitFlipIsDetected) {
  // CRC32 catches all single-bit errors; a flipped length prefix either
  // fails the CRC, waits for bytes that never come, or is rejected as
  // absurd. No flip may ever yield a successfully parsed *different*
  // payload.
  const std::string payload = EncodeCheckRequest(SampleRequest());
  const std::string frame = FramePayload(payload);
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = frame;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      FrameReader reader;
      reader.Feed(damaged.data(), damaged.size());
      auto next = reader.Next();
      if (!next.ok()) continue;                // detected: CRC / length
      if (!next->has_value()) continue;        // waiting for more bytes
      FAIL() << "bit flip at byte " << byte << " bit " << bit
             << " produced a successfully parsed frame";
    }
  }
}

TEST(FrameReaderTest, OversizedLengthIsRejectedImmediately) {
  FrameReader reader(/*expect_magic=*/false, /*max_frame_bytes=*/1024);
  std::string header;
  uint32_t len = 1u << 30;
  for (int i = 0; i < 4; ++i) header.push_back(char((len >> (8 * i)) & 0xFF));
  header.append(4, '\0');  // CRC placeholder; never read
  reader.Feed(header.data(), header.size());
  auto next = reader.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsParseError());
}

TEST(VerdictTest, RetrySafetyClassification) {
  EXPECT_TRUE(VerdictIsRetrySafe(Verdict::kShed));
  EXPECT_TRUE(VerdictIsRetrySafe(Verdict::kDraining));
  EXPECT_TRUE(VerdictIsRetrySafe(Verdict::kDeadlineExceeded));
  EXPECT_FALSE(VerdictIsRetrySafe(Verdict::kExecuted));
  EXPECT_FALSE(VerdictIsRetrySafe(Verdict::kError));
  EXPECT_STREQ(VerdictName(Verdict::kShed), "shed");
}

}  // namespace
}  // namespace ufilter::net
