// End-to-end epoch-stream replication over real sockets: a primary server
// with a ReplicationSource, a follower server subscribed to it. The
// acceptance this file pins:
//   - the follower converges byte-equal to the primary's published state
//     and serves *identical* verdicts for the paper's u1..u13 workload at
//     the matched epoch;
//   - a subscriber arriving mid-stream bootstraps from a snapshot at the
//     primary's current epoch and then rides the live tail;
//   - replication_lag_epochs falls to 0 once the primary idles (heartbeats
//     keep the gauge fresh without commits);
//   - a follower is read-only: applies come back kRedirectToPrimary naming
//     the primary, and are never executed locally.
#include "net/replication.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../support/temp_dir.h"
#include "fixtures/bookdb.h"
#include "fixtures/synthetic.h"
#include "net/client.h"
#include "net/server.h"
#include "relational/wal.h"

namespace ufilter::net {
namespace {

using check::UFilter;
using relational::Database;
using test_support::TempDir;

constexpr int kDepth = 2;
constexpr int kRows = 12;

struct Node {
  std::unique_ptr<Database> db;
  std::unique_ptr<UFilter> uf;
  std::unique_ptr<Server> server;
};

/// A durable primary: schema + WAL on, then seeded *through* the WAL so
/// the log certifies everything (the snapshot bootstrap covers pre-WAL
/// state anyway, but the crash tests want the full history on disk).
Node MakeChainPrimary(const std::string& wal) {
  Node node;
  auto db = Database::Create(fixtures::MakeChainSchema(kDepth));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  node.db = std::move(*db);
  relational::DurabilityOptions dopts;
  dopts.wal_path = wal;
  dopts.fsync_policy = relational::FsyncPolicy::kGroup;
  EXPECT_TRUE(node.db->EnableDurability(dopts).ok());
  EXPECT_TRUE(fixtures::PopulateChain(node.db.get(), kDepth, kRows).ok());
  EXPECT_TRUE(node.db->PublishVersion().ok());
  EXPECT_TRUE(node.db->SyncWal().ok());
  auto uf = UFilter::Create(node.db.get(), fixtures::ChainViewQuery(kDepth));
  EXPECT_TRUE(uf.ok()) << uf.status().ToString();
  node.uf = std::move(*uf);
  auto server = Server::Start(node.uf.get());
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  node.server = std::move(*server);
  return node;
}

/// The book database (u1..u13's world) as a durable primary. Seeding
/// happened before durability: the WAL only carries post-enable epochs and
/// the snapshot bootstrap ships the rest — deliberately exercising that
/// split.
Node MakeBookPrimary(const std::string& wal) {
  Node node;
  auto db = fixtures::MakeBookDatabase();
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  node.db = std::move(*db);
  relational::DurabilityOptions dopts;
  dopts.wal_path = wal;
  dopts.fsync_policy = relational::FsyncPolicy::kGroup;
  EXPECT_TRUE(node.db->EnableDurability(dopts).ok());
  EXPECT_TRUE(node.db->PublishVersion().ok());
  auto uf = UFilter::Create(node.db.get(), fixtures::BookViewQuery());
  EXPECT_TRUE(uf.ok()) << uf.status().ToString();
  node.uf = std::move(*uf);
  auto server = Server::Start(node.uf.get());
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  node.server = std::move(*server);
  return node;
}

/// A follower node: fresh database, redirecting server, no subscription
/// yet (the test owns the Follower so it can Stop/observe it).
Node MakeFollowerNode(const Node& primary, bool book) {
  Node node;
  auto db = Database::Create(book ? fixtures::MakeBookSchema()
                                  : fixtures::MakeChainSchema(kDepth));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  node.db = std::move(*db);
  auto uf = UFilter::Create(node.db.get(),
                            book ? fixtures::BookViewQuery()
                                 : fixtures::ChainViewQuery(kDepth));
  EXPECT_TRUE(uf.ok()) << uf.status().ToString();
  node.uf = std::move(*uf);
  ServerOptions sopts;
  sopts.redirect_primary =
      "127.0.0.1:" + std::to_string(primary.server->port());
  auto server = Server::Start(node.uf.get(), sopts);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  node.server = std::move(*server);
  return node;
}

std::unique_ptr<ReplicationSource> StartSource(Node* primary,
                                               const std::string& wal) {
  ReplicationSourceOptions ropts;
  ropts.wal_path = wal;
  auto src = ReplicationSource::Start(
      primary->db.get(), &primary->server->service().registry(), ropts);
  EXPECT_TRUE(src.ok()) << src.status().ToString();
  return src.ok() ? std::move(*src) : nullptr;
}

std::unique_ptr<Follower> StartFollower(Node* follower_node,
                                        const ReplicationSource& src) {
  FollowerOptions fopts;
  fopts.port = src.port();
  return Follower::Start(&follower_node->server->service(),
                         follower_node->db.get(), fopts);
}

std::string StateOf(Database* db) {
  auto state = db->SerializePublishedState();
  EXPECT_TRUE(state.ok()) << state.status().ToString();
  return state.ok() ? *state : std::string();
}

ClientOptions ClientFor(const Server& server) {
  ClientOptions opts;
  opts.port = server.port();
  return opts;
}

TEST(ReplicationTest, FollowerConvergesAndServesIdenticalVerdicts) {
  TempDir tmp("repl_e2e");
  ASSERT_TRUE(tmp.ok());
  const std::string wal = tmp.path("primary.wal");
  Node primary = MakeBookPrimary(wal);
  auto source = StartSource(&primary, wal);
  ASSERT_NE(source, nullptr);
  Node replica = MakeFollowerNode(primary, /*book=*/true);
  auto follower = StartFollower(&replica, *source);

  // Drive the primary through the paper's whole update workload; the
  // executed subset commits epochs into the WAL and onto the stream.
  Client writer(ClientFor(*primary.server));
  for (int u = 1; u <= 13; ++u) {
    auto resp = writer.Check(fixtures::PaperUpdate(u), /*apply=*/true);
    ASSERT_TRUE(resp.ok()) << "u" << u << ": " << resp.status().ToString();
  }

  const uint64_t target = primary.db->commit_epoch();
  ASSERT_TRUE(follower->WaitForEpoch(target, std::chrono::seconds(10)))
      << "follower stuck at epoch " << follower->applied_epoch() << " of "
      << target << " (status " << follower->status().ToString() << ")";
  EXPECT_TRUE(follower->status().ok());

  // Byte-equal convergence: published state is identical, not just similar.
  EXPECT_EQ(StateOf(replica.db.get()), StateOf(primary.db.get()));
  EXPECT_EQ(replica.db->commit_epoch(), target);

  // Verdict parity at the matched epoch: every u1..u13 dry-run answer from
  // the follower equals the primary's, field for field.
  Client on_primary(ClientFor(*primary.server));
  Client on_replica(ClientFor(*replica.server));
  for (int u = 1; u <= 13; ++u) {
    auto want = on_primary.Check(fixtures::PaperUpdate(u), /*apply=*/false);
    auto got = on_replica.Check(fixtures::PaperUpdate(u), /*apply=*/false);
    ASSERT_TRUE(want.ok()) << "u" << u << ": " << want.status().ToString();
    ASSERT_TRUE(got.ok()) << "u" << u << ": " << got.status().ToString();
    EXPECT_EQ(got->verdict, want->verdict) << "u" << u;
    EXPECT_EQ(got->status_code, want->status_code) << "u" << u;
    EXPECT_EQ(got->rows_affected, want->rows_affected) << "u" << u;
  }

  // The primary has idled through the parity pass: heartbeats must have
  // brought the lag gauges to zero.
  bool lag_zero = false;
  for (int i = 0; i < 200 && !lag_zero; ++i) {
    auto stats = follower->stats();
    lag_zero = stats.lag_epochs == 0 && stats.lag_ms == 0;
    if (!lag_zero) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(lag_zero) << "lag_epochs=" << follower->stats().lag_epochs;

  // Read-only contract: an apply against the follower is refused with a
  // redirect naming the primary, executes nothing, and the client hands
  // the verdict straight back (a redirect is not retry-safe).
  const uint64_t epoch_before = replica.db->commit_epoch();
  auto redirect = on_replica.Check(fixtures::PaperUpdate(4), /*apply=*/true);
  ASSERT_TRUE(redirect.ok()) << redirect.status().ToString();
  EXPECT_EQ(redirect->verdict, Verdict::kRedirectToPrimary);
  EXPECT_NE(redirect->message.find(
                "127.0.0.1:" + std::to_string(primary.server->port())),
            std::string::npos)
      << redirect->message;
  EXPECT_EQ(replica.db->commit_epoch(), epoch_before);
  EXPECT_GE(replica.server->stats().redirected_applies, 1u);
  EXPECT_EQ(on_replica.metrics().retries, 0u);

  // The source saw our acks climb to the target epoch.
  bool acked = false;
  for (int i = 0; i < 200 && !acked; ++i) {
    acked = source->stats().acked_epoch >= target;
    if (!acked) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(acked) << "acked_epoch=" << source->stats().acked_epoch;

  follower->Stop();
  source->Stop();
}

TEST(ReplicationTest, MidStreamSubscriberBootstrapsFromSnapshot) {
  TempDir tmp("repl_mid");
  ASSERT_TRUE(tmp.ok());
  const std::string wal = tmp.path("primary.wal");
  Node primary = MakeChainPrimary(wal);
  auto source = StartSource(&primary, wal);
  ASSERT_NE(source, nullptr);

  // History happens before the subscriber exists.
  for (int b = 0; b < 4; ++b) {
    ASSERT_TRUE(
        fixtures::ApplyChainBatch(primary.db.get(), kDepth, kRows, 11, b)
            .ok());
  }
  const uint64_t pre_subscribe_epoch = primary.db->commit_epoch();

  Node replica = MakeFollowerNode(primary, /*book=*/false);
  auto follower = StartFollower(&replica, *source);
  ASSERT_TRUE(
      follower->WaitForEpoch(pre_subscribe_epoch, std::chrono::seconds(10)));
  // The catch-up came from one snapshot, not a record-by-record replay of
  // history the subscriber never saw.
  EXPECT_EQ(follower->stats().snapshots_loaded, 1u);
  EXPECT_EQ(source->stats().snapshots_shipped, 1u);
  EXPECT_EQ(StateOf(replica.db.get()), StateOf(primary.db.get()));

  // And the live tail continues past the bootstrap.
  for (int b = 4; b < 7; ++b) {
    ASSERT_TRUE(
        fixtures::ApplyChainBatch(primary.db.get(), kDepth, kRows, 11, b)
            .ok());
  }
  ASSERT_TRUE(follower->WaitForEpoch(primary.db->commit_epoch(),
                                     std::chrono::seconds(10)));
  EXPECT_EQ(StateOf(replica.db.get()), StateOf(primary.db.get()));
  EXPECT_GT(follower->stats().records_applied, 0u);

  follower->Stop();
  source->Stop();
}

TEST(ReplicationTest, SourceRefusesToStartWithoutDurability) {
  auto db = fixtures::MakeChainDatabase(kDepth, kRows,
                                        relational::DeletePolicy::kCascade);
  ASSERT_TRUE(db.ok());
  obs::Registry registry;
  ReplicationSourceOptions ropts;
  ropts.wal_path = "/tmp/never-used.wal";
  auto src = ReplicationSource::Start(db->get(), &registry, ropts);
  EXPECT_FALSE(src.ok()) << "the stream *is* the WAL: no WAL, no stream";
}

}  // namespace
}  // namespace ufilter::net
