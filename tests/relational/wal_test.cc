// WAL + checkpoint persistence: record codec round-trips, CRC rejection,
// torn-tail truncation at *every* byte offset, fsync-policy accounting, and
// the recovery equivalences (full replay == live state; checkpoint + WAL
// suffix == full replay). Runs under ASan/UBSan in CI.
#include "relational/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../support/temp_dir.h"
#include "fixtures/synthetic.h"
#include "relational/database.h"

namespace ufilter::relational {
namespace {

using test_support::TempDir;

WalRecord SampleRecord(uint64_t epoch) {
  WalRecord record;
  record.epoch = epoch;
  RedoOp insert;
  insert.kind = RedoOp::Kind::kInsert;
  insert.table = "t0";
  insert.row_id = 3;
  insert.row = Row{Value::Int(7), Value::String("seven"), Value::Null(),
                   Value::Double(2.5)};
  RedoOp update;
  update.kind = RedoOp::Kind::kUpdate;
  update.table = "t1";
  update.row_id = 0;
  update.row = Row{Value::String("")};  // empty strings must survive
  RedoOp del;
  del.kind = RedoOp::Kind::kDelete;
  del.table = "t0";
  del.row_id = 12;
  record.ops = {insert, update, del};
  return record;
}

void ExpectRecordsEqual(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind) << "op " << i;
    EXPECT_EQ(a.ops[i].table, b.ops[i].table) << "op " << i;
    EXPECT_EQ(a.ops[i].row_id, b.ops[i].row_id) << "op " << i;
    ASSERT_EQ(a.ops[i].row.size(), b.ops[i].row.size()) << "op " << i;
    for (size_t c = 0; c < a.ops[i].row.size(); ++c) {
      EXPECT_TRUE(a.ops[i].row[c] == b.ops[i].row[c])
          << "op " << i << " col " << c;
    }
  }
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
}

TEST(WalCodecTest, PayloadRoundTrip) {
  const WalRecord record = SampleRecord(42);
  const std::string payload = EncodeWalPayload(record);
  Result<WalRecord> back = DecodeWalPayload(payload);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectRecordsEqual(record, *back);
}

TEST(WalCodecTest, EmptyRecordRoundTrip) {
  WalRecord record;
  record.epoch = 1;
  Result<WalRecord> back = DecodeWalPayload(EncodeWalPayload(record));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->epoch, 1u);
  EXPECT_TRUE(back->ops.empty());
}

TEST(WalCodecTest, DecodeRejectsTrailingGarbage) {
  std::string payload = EncodeWalPayload(SampleRecord(7));
  payload.push_back('\0');
  EXPECT_FALSE(DecodeWalPayload(payload).ok());
}

TEST(WalCodecTest, DecodeRejectsTruncatedPayload) {
  const std::string payload = EncodeWalPayload(SampleRecord(7));
  for (size_t n = 0; n < payload.size(); ++n) {
    EXPECT_FALSE(DecodeWalPayload(payload.substr(0, n)).ok())
        << "prefix of " << n << " bytes decoded";
  }
}

TEST(WalCodecTest, Crc32KnownVector) {
  // The classic IEEE check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(WalWriterTest, AppendReadRoundTrip) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string path = tmp.path("round.wal");
  {
    auto writer =
        WalWriter::Open(path, FsyncPolicy::kAlways, 1, nullptr);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (uint64_t e = 1; e <= 3; ++e) {
      ASSERT_TRUE((*writer)->Append(SampleRecord(e)).ok());
    }
    EXPECT_EQ((*writer)->records_appended(), 3u);
    EXPECT_EQ((*writer)->fsyncs(), 3u);  // kAlways: one per record
  }
  Result<WalReadResult> read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->records.size(), 3u);
  EXPECT_FALSE(read->tail_truncated);
  EXPECT_EQ(read->valid_bytes, std::filesystem::file_size(path));
  for (uint64_t e = 1; e <= 3; ++e) {
    ExpectRecordsEqual(SampleRecord(e), read->records[e - 1]);
  }
}

TEST(WalWriterTest, ReopenAppendsAfterExistingRecords) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string path = tmp.path("reopen.wal");
  {
    auto writer = WalWriter::Open(path, FsyncPolicy::kAlways, 1, nullptr);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(SampleRecord(1)).ok());
  }
  {
    auto writer = WalWriter::Open(path, FsyncPolicy::kAlways, 1, nullptr);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(SampleRecord(2)).ok());
  }
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_EQ(read->records[1].epoch, 2u);
}

TEST(WalWriterTest, OpenRejectsForeignFile) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string path = tmp.path("foreign.wal");
  Dump(path, "definitely not a ufilter WAL file");
  EXPECT_FALSE(WalWriter::Open(path, FsyncPolicy::kNever, 1, nullptr).ok());
  EXPECT_FALSE(ReadWal(path).ok());
}

TEST(WalWriterTest, MissingFileIsNotFound) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  Result<WalReadResult> read = ReadWal(tmp.path("absent.wal"));
  EXPECT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsNotFound());
}

TEST(WalWriterTest, FsyncPolicyAccounting) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  {  // kGroup(4): one fsync per four appends.
    auto writer =
        WalWriter::Open(tmp.path("group.wal"), FsyncPolicy::kGroup, 4,
                        nullptr);
    ASSERT_TRUE(writer.ok());
    for (uint64_t e = 1; e <= 8; ++e) {
      ASSERT_TRUE((*writer)->Append(SampleRecord(e)).ok());
    }
    EXPECT_EQ((*writer)->fsyncs(), 2u);
    ASSERT_TRUE((*writer)->Append(SampleRecord(9)).ok());
    EXPECT_EQ((*writer)->fsyncs(), 2u);  // 1 unsynced, below threshold
    ASSERT_TRUE((*writer)->Sync().ok());  // explicit barrier
    EXPECT_EQ((*writer)->fsyncs(), 3u);
    ASSERT_TRUE((*writer)->Sync().ok());  // nothing unsynced: no-op
    EXPECT_EQ((*writer)->fsyncs(), 3u);
  }
  {  // kNever: zero until an explicit Sync.
    auto writer =
        WalWriter::Open(tmp.path("never.wal"), FsyncPolicy::kNever, 1,
                        nullptr);
    ASSERT_TRUE(writer.ok());
    for (uint64_t e = 1; e <= 5; ++e) {
      ASSERT_TRUE((*writer)->Append(SampleRecord(e)).ok());
    }
    EXPECT_EQ((*writer)->fsyncs(), 0u);
    ASSERT_TRUE((*writer)->Sync().ok());
    EXPECT_EQ((*writer)->fsyncs(), 1u);
  }
}

TEST(WalReadTest, CrcCorruptionDropsTailRecord) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string path = tmp.path("crc.wal");
  uint64_t two_records_bytes = 0;
  {
    auto writer = WalWriter::Open(path, FsyncPolicy::kNever, 1, nullptr);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(SampleRecord(1)).ok());
    ASSERT_TRUE((*writer)->Append(SampleRecord(2)).ok());
    two_records_bytes = (*writer)->bytes_written();
    ASSERT_TRUE((*writer)->Append(SampleRecord(3)).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  std::string contents = Slurp(path);
  // Flip one payload byte inside the *last* frame (skip its 8-byte header).
  contents[two_records_bytes + 8 + 2] ^= 0x40;
  Dump(path, contents);
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->records.size(), 2u);
  EXPECT_TRUE(read->tail_truncated);
  EXPECT_EQ(read->valid_bytes, two_records_bytes);
}

TEST(WalReadTest, TornTailTruncationAtEveryOffset) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string path = tmp.path("full.wal");
  std::vector<uint64_t> prefix_bytes;  // valid prefix after k records
  {
    auto writer = WalWriter::Open(path, FsyncPolicy::kNever, 1, nullptr);
    ASSERT_TRUE(writer.ok());
    prefix_bytes.push_back((*writer)->bytes_written());  // magic only
    for (uint64_t e = 1; e <= 3; ++e) {
      ASSERT_TRUE((*writer)->Append(SampleRecord(e)).ok());
      prefix_bytes.push_back((*writer)->bytes_written());
    }
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  const std::string contents = Slurp(path);
  ASSERT_EQ(contents.size(), prefix_bytes.back());
  const std::string torn = tmp.path("torn.wal");
  for (size_t cut = 0; cut <= contents.size(); ++cut) {
    Dump(torn, contents.substr(0, cut));
    auto read = ReadWal(torn);
    ASSERT_TRUE(read.ok()) << "cut=" << cut << ": "
                           << read.status().ToString();
    // Complete records strictly below the cut survive; everything after
    // the last complete frame is reported torn.
    size_t expect_records = 0;
    while (expect_records + 1 < prefix_bytes.size() &&
           prefix_bytes[expect_records + 1] <= cut) {
      ++expect_records;
    }
    EXPECT_EQ(read->records.size(), expect_records) << "cut=" << cut;
    const uint64_t expect_valid =
        cut < prefix_bytes.front() ? 0 : prefix_bytes[expect_records];
    EXPECT_EQ(read->valid_bytes, expect_valid) << "cut=" << cut;
    EXPECT_EQ(read->tail_truncated, expect_valid < cut) << "cut=" << cut;
    for (size_t e = 0; e < expect_records; ++e) {
      EXPECT_EQ(read->records[e].epoch, e + 1) << "cut=" << cut;
    }
  }
}

// ----------------------------------------------------------------------
// Database-level durability: replay equivalence oracles.
// ----------------------------------------------------------------------

constexpr int kDepth = 2;
constexpr int kRows = 6;

std::unique_ptr<Database> MakeEmptyChain() {
  auto db = Database::Create(fixtures::MakeChainSchema(kDepth));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

// Creates a durable chain db at `wal`, populates it and runs `batches`
// deterministic writer batches. Returns the live state fingerprint.
std::string BuildDurableHistory(const std::string& wal, uint32_t seed,
                                int batches, Database** out_db,
                                std::unique_ptr<Database>* holder) {
  std::unique_ptr<Database> db = MakeEmptyChain();
  DurabilityOptions opts;
  opts.wal_path = wal;
  opts.fsync_policy = FsyncPolicy::kGroup;
  opts.group_commit_size = 4;
  EXPECT_TRUE(db->EnableDurability(opts).ok());
  EXPECT_TRUE(fixtures::PopulateChain(db.get(), kDepth, kRows).ok());
  for (int i = 0; i < batches; ++i) {
    EXPECT_TRUE(
        fixtures::ApplyChainBatch(db.get(), kDepth, kRows, seed, i).ok());
  }
  EXPECT_TRUE(db->SyncWal().ok());
  EXPECT_TRUE(db->wal_status().ok());
  Result<std::string> state = db->SerializePublishedState();
  EXPECT_TRUE(state.ok()) << state.status().ToString();
  *out_db = db.get();
  *holder = std::move(db);
  return *state;
}

TEST(WalRecoveryTest, FullReplayReproducesLiveState) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  Database* live = nullptr;
  std::unique_ptr<Database> holder;
  const std::string expect =
      BuildDurableHistory(tmp.path("db.wal"), 1234, 10, &live, &holder);
  const uint64_t live_epoch = live->commit_epoch();

  std::unique_ptr<Database> recovered = MakeEmptyChain();
  ASSERT_TRUE(recovered->RecoverFrom(tmp.path("db.wal")).ok());
  EXPECT_EQ(recovered->commit_epoch(), live_epoch);
  Result<std::string> state = recovered->SerializePublishedState();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, expect) << "recovered state diverged from live state";
}

TEST(WalRecoveryTest, CheckpointPlusSuffixEqualsFullReplay) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string wal = tmp.path("db.wal");
  const std::string ckpt = tmp.path("db.ckpt");

  std::unique_ptr<Database> db = MakeEmptyChain();
  DurabilityOptions opts;
  opts.wal_path = wal;
  ASSERT_TRUE(db->EnableDurability(opts).ok());
  ASSERT_TRUE(fixtures::PopulateChain(db.get(), kDepth, kRows).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        fixtures::ApplyChainBatch(db.get(), kDepth, kRows, 99, i).ok());
  }
  // Checkpoint mid-history, then keep writing.
  Result<uint64_t> ckpt_epoch = db->WriteCheckpoint(ckpt);
  ASSERT_TRUE(ckpt_epoch.ok()) << ckpt_epoch.status().ToString();
  EXPECT_EQ(*ckpt_epoch, db->commit_epoch());
  for (int i = 5; i < 9; ++i) {
    ASSERT_TRUE(
        fixtures::ApplyChainBatch(db.get(), kDepth, kRows, 99, i).ok());
  }
  ASSERT_TRUE(db->SyncWal().ok());
  Result<std::string> live_state = db->SerializePublishedState();
  ASSERT_TRUE(live_state.ok());

  // (a) WAL-only replay.
  std::unique_ptr<Database> wal_only = MakeEmptyChain();
  DurabilityOptions wal_opts;
  wal_opts.wal_path = wal;
  ASSERT_TRUE(wal_only->RecoverFrom(wal_opts).ok());
  // (b) checkpoint + WAL suffix.
  std::unique_ptr<Database> with_ckpt = MakeEmptyChain();
  DurabilityOptions ckpt_opts;
  ckpt_opts.wal_path = wal;
  ckpt_opts.checkpoint_path = ckpt;
  ASSERT_TRUE(with_ckpt->RecoverFrom(ckpt_opts).ok());

  Result<std::string> a = wal_only->SerializePublishedState();
  Result<std::string> b = with_ckpt->SerializePublishedState();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *live_state);
  EXPECT_EQ(*b, *live_state)
      << "checkpoint + suffix diverged from full replay";
  EXPECT_EQ(wal_only->commit_epoch(), db->commit_epoch());
  EXPECT_EQ(with_ckpt->commit_epoch(), db->commit_epoch());
}

TEST(WalRecoveryTest, CheckpointAloneRestoresState) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  Database* live = nullptr;
  std::unique_ptr<Database> holder;
  const std::string expect =
      BuildDurableHistory(tmp.path("db.wal"), 7, 6, &live, &holder);
  Result<uint64_t> epoch = live->WriteCheckpoint(tmp.path("db.ckpt"));
  ASSERT_TRUE(epoch.ok());

  // No WAL at all: the checkpoint carries the full state.
  std::unique_ptr<Database> recovered = MakeEmptyChain();
  DurabilityOptions opts;
  opts.wal_path = tmp.path("missing.wal");
  opts.checkpoint_path = tmp.path("db.ckpt");
  ASSERT_TRUE(recovered->RecoverFrom(opts).ok());
  EXPECT_EQ(recovered->commit_epoch(), *epoch);
  Result<std::string> state = recovered->SerializePublishedState();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, expect);
}

TEST(WalRecoveryTest, TruncatesTornTailThenResumesAppending) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string wal = tmp.path("db.wal");
  Database* live = nullptr;
  std::unique_ptr<Database> holder;
  BuildDurableHistory(wal, 5, 4, &live, &holder);
  holder.reset();  // release the fd before mangling the file

  // Tear the tail: chop the last 3 bytes of the final record.
  std::string contents = Slurp(wal);
  const std::string full = contents;
  contents.resize(contents.size() - 3);
  Dump(wal, contents);
  auto before = ReadWal(wal);
  ASSERT_TRUE(before.ok());
  const size_t surviving = before->records.size();
  EXPECT_TRUE(before->tail_truncated);

  std::unique_ptr<Database> db = MakeEmptyChain();
  ASSERT_TRUE(db->RecoverFrom(wal).ok());
  // Recovery physically truncated the torn bytes...
  EXPECT_EQ(std::filesystem::file_size(wal), before->valid_bytes);
  // ...so re-enabling durability appends cleanly after the valid prefix.
  DurabilityOptions opts;
  opts.wal_path = wal;
  opts.fsync_policy = FsyncPolicy::kAlways;
  ASSERT_TRUE(db->EnableDurability(opts).ok());
  ASSERT_TRUE(fixtures::ApplyChainBatch(db.get(), kDepth, kRows, 5, 99).ok());
  ASSERT_TRUE(db->SyncWal().ok());
  auto after = ReadWal(wal);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->records.size(), surviving + 1);
  EXPECT_FALSE(after->tail_truncated);
}

TEST(WalRecoveryTest, RequiresFreshDatabase) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  Database* live = nullptr;
  std::unique_ptr<Database> holder;
  BuildDurableHistory(tmp.path("db.wal"), 3, 2, &live, &holder);

  std::unique_ptr<Database> used = MakeEmptyChain();
  ASSERT_TRUE(fixtures::PopulateChain(used.get(), kDepth, kRows).ok());
  { Database::WriterGuard guard(used.get()); }  // publish something
  EXPECT_FALSE(used->RecoverFrom(tmp.path("db.wal")).ok())
      << "recovery into a non-fresh database must be refused";
}

TEST(WalDatabaseTest, RolledBackOpsNeverReachTheLog) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  const std::string wal = tmp.path("db.wal");
  std::unique_ptr<Database> db = MakeEmptyChain();
  DurabilityOptions opts;
  opts.wal_path = wal;
  opts.fsync_policy = FsyncPolicy::kAlways;
  ASSERT_TRUE(db->EnableDurability(opts).ok());
  ASSERT_TRUE(fixtures::PopulateChain(db.get(), kDepth, kRows).ok());
  { Database::WriterGuard guard(db.get()); }  // publish the seed epoch
  ASSERT_TRUE(db->SyncWal().ok());
  auto seeded = ReadWal(wal);
  ASSERT_TRUE(seeded.ok());
  const size_t seed_records = seeded->records.size();
  {
    Database::WriterGuard guard(db.get());
    const size_t mark = db->Begin();
    ASSERT_TRUE(db->Insert("t0", Row{Value::Int(777),
                                     Value::String("doomed")})
                    .ok());
    db->Rollback(mark);
  }
  ASSERT_TRUE(db->SyncWal().ok());
  auto read = ReadWal(wal);
  ASSERT_TRUE(read.ok());
  for (size_t i = seed_records; i < read->records.size(); ++i) {
    EXPECT_TRUE(read->records[i].ops.empty())
        << "epoch " << read->records[i].epoch
        << " logged rolled-back ops";
  }
  // And the replayed state matches: no phantom row 777.
  std::unique_ptr<Database> recovered = MakeEmptyChain();
  ASSERT_TRUE(recovered->RecoverFrom(wal).ok());
  Result<std::string> a = db->SerializePublishedState();
  Result<std::string> b = recovered->SerializePublishedState();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(WalDatabaseTest, EngineCountersTrackAppendsAndSyncs) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  std::unique_ptr<Database> db = MakeEmptyChain();
  DurabilityOptions opts;
  opts.wal_path = tmp.path("db.wal");
  opts.fsync_policy = FsyncPolicy::kAlways;
  ASSERT_TRUE(db->EnableDurability(opts).ok());
  ASSERT_TRUE(fixtures::PopulateChain(db.get(), kDepth, kRows).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        fixtures::ApplyChainBatch(db.get(), kDepth, kRows, 11, i).ok());
  }
  ASSERT_TRUE(db->SyncWal().ok());
  EngineStats stats = db->SnapshotWorkCounters();
  EXPECT_GT(stats.wal_records, 0u);
  EXPECT_GT(stats.wal_bytes, 0u);
  EXPECT_GE(stats.wal_fsyncs, stats.wal_records);  // kAlways
  // Every published epoch since enabling must have exactly one record.
  auto read = ReadWal(opts.wal_path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), stats.wal_records);
  EXPECT_EQ(read->records.back().epoch, db->commit_epoch());
}

TEST(WalDatabaseTest, EnableDurabilityRejectsBadConfig) {
  std::unique_ptr<Database> db = MakeEmptyChain();
  DurabilityOptions empty;
  EXPECT_FALSE(db->EnableDurability(empty).ok());

  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  DurabilityOptions opts;
  opts.wal_path = tmp.path("db.wal");
  ASSERT_TRUE(db->EnableDurability(opts).ok());
  EXPECT_FALSE(db->EnableDurability(opts).ok()) << "double enable";
  EXPECT_TRUE(db->durability_enabled());
}

TEST(WalCheckpointTest, CorruptCheckpointIsFatal) {
  TempDir tmp;
  ASSERT_TRUE(tmp.ok());
  Database* live = nullptr;
  std::unique_ptr<Database> holder;
  BuildDurableHistory(tmp.path("db.wal"), 21, 3, &live, &holder);
  const std::string ckpt = tmp.path("db.ckpt");
  ASSERT_TRUE(live->WriteCheckpoint(ckpt).ok());

  std::string contents = Slurp(ckpt);
  contents[contents.size() / 2] ^= 0x01;
  Dump(ckpt, contents);
  EXPECT_FALSE(ReadCheckpointFile(ckpt).ok());

  std::unique_ptr<Database> recovered = MakeEmptyChain();
  DurabilityOptions opts;
  opts.wal_path = tmp.path("db.wal");
  opts.checkpoint_path = ckpt;
  EXPECT_FALSE(recovered->RecoverFrom(opts).ok())
      << "a damaged checkpoint must fail recovery, not silently degrade";
}

}  // namespace
}  // namespace ufilter::relational
