// Multi-predicate (OR-of-branches) probe support: one merged query must
// return the union of its branches' rows with a correct per-branch
// demultiplexing map, and keep index access when every branch pins an
// indexed column.
#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "relational/query.h"

namespace ufilter::relational {
namespace {

class DisjunctiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = fixtures::MakeBookDatabase();
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }

  static SelectQuery BookQuery() {
    SelectQuery q;
    q.tables.push_back({"book", "b"});
    q.selects.push_back({"b", "bookid"});
    q.selects.push_back({"b", "price"});
    return q;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(DisjunctiveTest, DemultiplexesBranches) {
  DisjunctiveQuery dq;
  dq.base = BookQuery();
  dq.branches.push_back(
      {{{"b", "bookid"}, CompareOp::kEq, Value::String("98001")}});
  dq.branches.push_back(
      {{{"b", "bookid"}, CompareOp::kEq, Value::String("98003")}});
  QueryEvaluator evaluator(db_.get());
  auto result = evaluator.ExecuteDisjunctive(dq);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->merged.size(), 2u);
  ASSERT_EQ(result->branch_rows.size(), 2u);
  ASSERT_EQ(result->branch_rows[0].size(), 1u);
  ASSERT_EQ(result->branch_rows[1].size(), 1u);
  QueryResult first = result->Extract(0);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first.rows[0][0].AsString(), "98001");
  QueryResult second = result->Extract(1);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second.rows[0][0].AsString(), "98003");
}

TEST_F(DisjunctiveTest, RowCanBelongToSeveralBranches) {
  DisjunctiveQuery dq;
  dq.base = BookQuery();
  // Branch 0: price > 40 (98002, 98003); branch 1: bookid = 98003.
  dq.branches.push_back(
      {{{"b", "price"}, CompareOp::kGt, Value::Double(40.0)}});
  dq.branches.push_back(
      {{{"b", "bookid"}, CompareOp::kEq, Value::String("98003")}});
  QueryEvaluator evaluator(db_.get());
  auto result = evaluator.ExecuteDisjunctive(dq);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->merged.size(), 2u);  // union, not concatenation
  EXPECT_EQ(result->branch_rows[0].size(), 2u);
  EXPECT_EQ(result->branch_rows[1].size(), 1u);
}

TEST_F(DisjunctiveTest, UsesIndexUnionWhenEveryBranchPinsKey) {
  DisjunctiveQuery dq;
  dq.base = BookQuery();
  dq.branches.push_back(
      {{{"b", "bookid"}, CompareOp::kEq, Value::String("98001")}});
  dq.branches.push_back(
      {{{"b", "bookid"}, CompareOp::kEq, Value::String("98002")}});
  db_->ResetWorkCounters();
  QueryEvaluator evaluator(db_.get());
  auto result = evaluator.ExecuteDisjunctive(dq);
  ASSERT_TRUE(result.ok());
  EngineStats stats = db_->SnapshotWorkCounters();
  EXPECT_EQ(stats.rows_scanned, 0u);  // IN-list path, no table scan
  EXPECT_GE(stats.index_lookups, 2u);
  EXPECT_EQ(stats.queries_executed, 1u);
  EXPECT_EQ(stats.batch_queries_executed, 1u);
  EXPECT_EQ(stats.batch_branches_merged, 2u);
}

TEST_F(DisjunctiveTest, FallsBackToScanWhenABranchHasNoIndexedEquality) {
  DisjunctiveQuery dq;
  dq.base = BookQuery();
  dq.branches.push_back(
      {{{"b", "bookid"}, CompareOp::kEq, Value::String("98001")}});
  dq.branches.push_back(
      {{{"b", "price"}, CompareOp::kGt, Value::Double(40.0)}});
  db_->ResetWorkCounters();
  QueryEvaluator evaluator(db_.get());
  auto result = evaluator.ExecuteDisjunctive(dq);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(db_->SnapshotWorkCounters().rows_scanned, 0u);
  EXPECT_EQ(result->branch_rows[0].size(), 1u);
  EXPECT_EQ(result->branch_rows[1].size(), 2u);
}

TEST_F(DisjunctiveTest, ToSqlRendersOrOfConjunctions) {
  DisjunctiveQuery dq;
  dq.base = BookQuery();
  dq.branches.push_back(
      {{{"b", "bookid"}, CompareOp::kEq, Value::String("98001")}});
  dq.branches.push_back(
      {{{"b", "bookid"}, CompareOp::kEq, Value::String("98003")}});
  std::string sql = dq.ToSql();
  EXPECT_NE(sql.find(" OR "), std::string::npos) << sql;
  EXPECT_NE(sql.find("b.bookid = '98001'"), std::string::npos) << sql;
}

TEST_F(DisjunctiveTest, PlainExecuteMatchesSingleBranch) {
  SelectQuery q = BookQuery();
  q.filters.push_back(
      {{"b", "bookid"}, CompareOp::kEq, Value::String("98001")});
  QueryEvaluator evaluator(db_.get());
  auto plain = evaluator.Execute(q);
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(plain->size(), 1u);
  EXPECT_EQ(plain->rows[0][0].AsString(), "98001");
}

TEST_F(DisjunctiveTest, ResetWorkCountersZeroesEverything) {
  QueryEvaluator evaluator(db_.get());
  (void)evaluator.Execute(BookQuery());
  EXPECT_GT(db_->SnapshotWorkCounters().queries_executed, 0u);
  db_->ResetWorkCounters();
  EngineStats zero = db_->SnapshotWorkCounters();
  EXPECT_EQ(zero.queries_executed, 0u);
  EXPECT_EQ(zero.rows_scanned, 0u);
  EXPECT_EQ(zero.index_lookups, 0u);
}

TEST_F(DisjunctiveTest, DiffSinceSubtractsBaseline) {
  QueryEvaluator evaluator(db_.get());
  db_->ResetWorkCounters();
  (void)evaluator.Execute(BookQuery());
  EngineStats baseline = db_->SnapshotWorkCounters();
  (void)evaluator.Execute(BookQuery());
  EngineStats diff = db_->SnapshotWorkCounters().DiffSince(baseline);
  EXPECT_EQ(diff.queries_executed, 1u);
}

}  // namespace
}  // namespace ufilter::relational
