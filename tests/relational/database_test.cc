#include "relational/database.h"

#include <gtest/gtest.h>

#include "fixtures/bookdb.h"

namespace ufilter::relational {
namespace {

using fixtures::MakeBookDatabase;
using fixtures::MakeBookSchema;

std::unique_ptr<Database> Db(DeletePolicy policy = DeletePolicy::kCascade) {
  auto db = MakeBookDatabase(policy);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

TEST(DatabaseTest, FixtureCardinalities) {
  auto db = Db();
  EXPECT_EQ((*db->GetTable("publisher"))->live_row_count(), 3u);
  EXPECT_EQ((*db->GetTable("book"))->live_row_count(), 3u);
  EXPECT_EQ((*db->GetTable("review"))->live_row_count(), 2u);
  EXPECT_EQ(db->TotalRows(), 8u);
}

TEST(DatabaseTest, InsertEnforcesNotNull) {
  auto db = Db();
  auto r = db->Insert("book", {Value::String("99"), Value::Null(),
                               Value::String("A01"), Value::Double(10),
                               Value::Int(2000)});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsConstraintViolation());
}

TEST(DatabaseTest, InsertEnforcesCheck) {
  auto db = Db();
  auto r = db->Insert("book", {Value::String("99"), Value::String("T"),
                               Value::String("A01"), Value::Double(-5),
                               Value::Int(2000)});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsConstraintViolation());
}

TEST(DatabaseTest, InsertEnforcesPrimaryKey) {
  auto db = Db();
  auto r = db->Insert("publisher",
                      {Value::String("A01"), Value::String("Other")});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsConstraintViolation());
}

TEST(DatabaseTest, InsertEnforcesUniqueColumn) {
  auto db = Db();
  // pubname is UNIQUE.
  auto r = db->Insert("publisher",
                      {Value::String("Z09"), Value::String("McGraw-Hill Inc.")});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsConstraintViolation());
}

TEST(DatabaseTest, InsertEnforcesForeignKeyExistence) {
  auto db = Db();
  auto r = db->Insert("book", {Value::String("99"), Value::String("T"),
                               Value::String("NOPE"), Value::Double(5),
                               Value::Int(2000)});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsConstraintViolation());
}

TEST(DatabaseTest, NullForeignKeyReferencesNothing) {
  auto db = Db();
  auto r = db->Insert("book", {Value::String("99"), Value::String("T"),
                               Value::Null(), Value::Double(5),
                               Value::Int(2000)});
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(DatabaseTest, InsertEnforcesDomain) {
  auto db = Db();
  auto r = db->Insert("book", {Value::String("99"), Value::String("T"),
                               Value::String("A01"), Value::String("cheap"),
                               Value::Int(2000)});
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsConstraintViolation());
}

TEST(DatabaseTest, DeleteCascades) {
  auto db = Db();
  // Deleting publisher A01 cascades to 2 books and their 2 reviews.
  auto outcome = db->DeleteWhere(
      "publisher", {{"pubid", CompareOp::kEq, Value::String("A01")}});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->deleted_rows, 1 + 2 + 2);
  EXPECT_EQ((*db->GetTable("book"))->live_row_count(), 1u);
  EXPECT_EQ((*db->GetTable("review"))->live_row_count(), 0u);
}

TEST(DatabaseTest, DeleteSetNullPolicy) {
  auto db = Db(DeletePolicy::kSetNull);
  auto outcome = db->DeleteWhere(
      "publisher", {{"pubid", CompareOp::kEq, Value::String("A01")}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->deleted_rows, 1);
  EXPECT_EQ(outcome->nulled_rows, 2);
  // Books survive with NULL pubid.
  auto book = *db->GetTable("book");
  EXPECT_EQ(book->live_row_count(), 3u);
  auto rows = book->Find({{"pubid", CompareOp::kEq, Value::String("A01")}},
                         nullptr);
  EXPECT_TRUE(rows.empty());
}

TEST(DatabaseTest, DeleteRestrictPolicyRejectsAndLeavesStateIntact) {
  auto db = Db(DeletePolicy::kRestrict);
  auto outcome = db->DeleteWhere(
      "publisher", {{"pubid", CompareOp::kEq, Value::String("A01")}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsConstraintViolation());
  EXPECT_EQ((*db->GetTable("publisher"))->live_row_count(), 3u);
}

TEST(DatabaseTest, DeleteUnreferencedUnderRestrictSucceeds) {
  auto db = Db(DeletePolicy::kRestrict);
  auto outcome = db->DeleteWhere(
      "publisher", {{"pubid", CompareOp::kEq, Value::String("B01")}});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->deleted_rows, 1);
}

TEST(DatabaseTest, RollbackRestoresEverything) {
  auto db = Db();
  size_t mark = db->Begin();
  ASSERT_TRUE(db->DeleteWhere("publisher", {}).ok());  // delete all, cascades
  EXPECT_EQ(db->TotalRows(), 0u);
  db->Rollback(mark);
  EXPECT_EQ(db->TotalRows(), 8u);
  // Rows are found through indexes again after restore.
  auto book = *db->GetTable("book");
  EXPECT_EQ(
      book->Find({{"bookid", CompareOp::kEq, Value::String("98001")}}, nullptr)
          .size(),
      1u);
}

TEST(DatabaseTest, NestedSavepoints) {
  auto db = Db();
  size_t outer = db->Begin();
  ASSERT_TRUE(db->Insert("publisher",
                         {Value::String("X1"), Value::String("New Pub 1")})
                  .ok());
  size_t inner = db->Begin();
  ASSERT_TRUE(db->Insert("publisher",
                         {Value::String("X2"), Value::String("New Pub 2")})
                  .ok());
  db->Rollback(inner);
  EXPECT_EQ((*db->GetTable("publisher"))->live_row_count(), 4u);
  db->Rollback(outer);
  EXPECT_EQ((*db->GetTable("publisher"))->live_row_count(), 3u);
}

TEST(DatabaseTest, UpdateWhereChangesAndChecks) {
  auto db = Db();
  auto n = db->UpdateWhere(
      "book", {{"price", Value::Double(10.0)}},
      {{"bookid", CompareOp::kEq, Value::String("98001")}});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  // CHECK still enforced on update.
  auto bad = db->UpdateWhere(
      "book", {{"price", Value::Double(-1.0)}},
      {{"bookid", CompareOp::kEq, Value::String("98001")}});
  EXPECT_FALSE(bad.ok());
}

TEST(DatabaseTest, UpdateWhereUniqueConflict) {
  auto db = Db();
  auto bad = db->UpdateWhere(
      "publisher", {{"pubname", Value::String("McGraw-Hill Inc.")}},
      {{"pubid", CompareOp::kEq, Value::String("B01")}});
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsConstraintViolation());
}

TEST(DatabaseTest, FindUsesIndexOnKeyColumn) {
  auto db = Db();
  db->stats().Reset();
  auto book = *db->GetTable("book");
  auto rows = book->Find({{"bookid", CompareOp::kEq, Value::String("98002")}},
                         &db->stats());
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(db->stats().index_lookups, 1u);
  EXPECT_EQ(db->stats().rows_scanned, 0u);
}

TEST(DatabaseTest, FindScansOnNonIndexedColumn) {
  auto db = Db();
  db->stats().Reset();
  auto book = *db->GetTable("book");
  auto rows = book->Find(
      {{"title", CompareOp::kEq, Value::String("Data on the Web")}},
      &db->stats());
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_EQ(db->stats().rows_scanned, 3u);
}

TEST(DatabaseTest, TempTablesHaveNoIndexesAndNoFkChecks) {
  auto db = Db();
  TableSchema temp("TAB_book");
  temp.AddColumn("bookid", ValueType::kString);
  auto t = db->CreateTempTable(temp);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(db->Insert("TAB_book", {Value::String("98001")}).ok());
  EXPECT_FALSE((*t)->HasIndexOn("bookid"));
  EXPECT_TRUE(db->IsTempTable("TAB_book"));
  ASSERT_TRUE(db->DropTempTable("TAB_book").ok());
  EXPECT_FALSE(db->GetTable("TAB_book").ok());
}

TEST(DatabaseTest, DuplicateTempTableRejected) {
  auto db = Db();
  TableSchema temp("publisher");
  temp.AddColumn("x", ValueType::kInt);
  EXPECT_FALSE(db->CreateTempTable(temp).ok());
}

TEST(SchemaTest, ExtendFollowsCascadeTransitively) {
  auto schema = MakeBookSchema(DeletePolicy::kCascade);
  auto ext = schema.Extend("publisher");
  EXPECT_EQ(ext.size(), 3u);  // publisher, book, review
  ext = schema.Extend("book");
  EXPECT_EQ(ext.size(), 2u);  // book, review
  ext = schema.Extend("review");
  EXPECT_EQ(ext.size(), 1u);
}

TEST(SchemaTest, ExtendStopsAtSetNullableFk) {
  auto schema = MakeBookSchema(DeletePolicy::kSetNull);
  // book.pubid is nullable: deleting a publisher nulls it, the book stays.
  auto ext = schema.Extend("publisher");
  EXPECT_EQ(ext.size(), 1u);
  // review.bookid is NOT NULL (part of PK): SET NULL impossible -> the
  // review must go, so book still extends to review.
  ext = schema.Extend("book");
  EXPECT_EQ(ext.size(), 2u);
}

TEST(SchemaTest, ExtendStopsAtRestrict) {
  auto schema = MakeBookSchema(DeletePolicy::kRestrict);
  EXPECT_EQ(schema.Extend("publisher").size(), 1u);
}

TEST(SchemaTest, UniqueIdentifier) {
  auto schema = MakeBookSchema();
  auto pub = *schema.FindTable("publisher");
  EXPECT_TRUE(pub->IsUniqueIdentifier("pubid"));
  EXPECT_TRUE(pub->IsUniqueIdentifier("pubname"));  // UNIQUE column
  auto review = *schema.FindTable("review");
  // Composite key: no single column identifies a review.
  EXPECT_FALSE(review->IsUniqueIdentifier("bookid"));
  EXPECT_FALSE(review->IsUniqueIdentifier("reviewid"));
}

TEST(SchemaTest, ValidateCatchesDanglingFk) {
  DatabaseSchema schema;
  TableSchema t("a");
  t.AddColumn("x", ValueType::kInt);
  t.AddForeignKey({{"x"}, "missing", {"y"}, DeletePolicy::kCascade});
  ASSERT_TRUE(schema.AddTable(std::move(t)).ok());
  EXPECT_FALSE(schema.Validate().ok());
}

TEST(SchemaTest, CreateSqlRendering) {
  auto schema = MakeBookSchema();
  std::string sql = (*schema.FindTable("book"))->ToCreateSql();
  EXPECT_NE(sql.find("PRIMARY KEY (bookid)"), std::string::npos);
  EXPECT_NE(sql.find("FOREIGN KEY (pubid) REFERENCES publisher"),
            std::string::npos);
  EXPECT_NE(sql.find("CHECK (price > 0.00)"), std::string::npos);
}

}  // namespace
}  // namespace ufilter::relational
