// The replication substrate below the wire: WalTailer incremental reads
// over a live log, and the follower apply path
// (Database::LoadReplicatedSnapshot / ApplyReplicatedEpoch) proven
// byte-equal against RecoverFrom — the stream and the log must be the same
// artifact.
#include "relational/wal.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "../support/temp_dir.h"
#include "fixtures/synthetic.h"
#include "relational/database.h"

namespace ufilter::relational {
namespace {

using test_support::TempDir;

constexpr int kDepth = 2;
constexpr int kRows = 8;
constexpr uint64_t kNoCap = 64u << 20;

std::unique_ptr<Database> MakeEmptyChain() {
  auto db = Database::Create(fixtures::MakeChainSchema(kDepth));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

/// A durable primary with the seed plus `batches` committed batches.
std::unique_ptr<Database> MakePrimary(const std::string& wal, int batches,
                                      uint32_t seed = 7) {
  auto db = MakeEmptyChain();
  DurabilityOptions opts;
  opts.wal_path = wal;
  opts.fsync_policy = FsyncPolicy::kGroup;
  opts.group_commit_size = 4;
  EXPECT_TRUE(db->EnableDurability(opts).ok());
  EXPECT_TRUE(fixtures::PopulateChain(db.get(), kDepth, kRows).ok());
  for (int b = 0; b < batches; ++b) {
    EXPECT_TRUE(
        fixtures::ApplyChainBatch(db.get(), kDepth, kRows, seed, b).ok());
  }
  EXPECT_TRUE(db->SyncWal().ok());
  return db;
}

std::string StateOf(Database* db) {
  auto state = db->SerializePublishedState();
  EXPECT_TRUE(state.ok()) << state.status().ToString();
  return state.ok() ? *state : std::string();
}

// --- WalTailer ------------------------------------------------------------

TEST(WalTailerTest, SeesRecordsAsTheyCommitAndOnlyOnce) {
  TempDir tmp("tailer_live");
  ASSERT_TRUE(tmp.ok());
  const std::string wal = tmp.path("live.wal");

  WalTailer tailer(wal);
  // Before the writer even creates the file: an empty batch, not an error.
  auto none = tailer.Poll(kNoCap);
  ASSERT_TRUE(none.ok()) << none.status().ToString();
  EXPECT_TRUE(none->empty());

  auto db = MakePrimary(wal, /*batches=*/3);
  auto first = tailer.Poll(kNoCap);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_FALSE(first->empty());
  uint64_t prev_epoch = 0;
  uint64_t prev_end = 0;
  for (const auto& rec : *first) {
    EXPECT_GT(rec.epoch, prev_epoch) << "epochs strictly increase";
    EXPECT_GT(rec.end_offset, prev_end);
    prev_epoch = rec.epoch;
    prev_end = rec.end_offset;
    auto decoded = DecodeWalPayload(rec.payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->epoch, rec.epoch);
  }
  EXPECT_EQ(prev_epoch, db->commit_epoch());
  EXPECT_EQ(tailer.offset(), tailer.known_file_bytes());

  // Nothing new: an empty poll, never a re-delivery.
  auto again = tailer.Poll(kNoCap);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());

  // A later commit shows up incrementally. kGroup staging means the bytes
  // may still be in the writer's buffer — FlushWalToFile makes them
  // file-visible without disturbing the fsync schedule.
  ASSERT_TRUE(fixtures::ApplyChainBatch(db.get(), kDepth, kRows, 7, 3).ok());
  ASSERT_TRUE(db->FlushWalToFile().ok());
  auto incr = tailer.Poll(kNoCap);
  ASSERT_TRUE(incr.ok()) << incr.status().ToString();
  ASSERT_FALSE(incr->empty());
  EXPECT_EQ(incr->back().epoch, db->commit_epoch());
}

TEST(WalTailerTest, BatchCapSplitsButNeverDropsRecords) {
  TempDir tmp("tailer_cap");
  ASSERT_TRUE(tmp.ok());
  const std::string wal = tmp.path("cap.wal");
  auto db = MakePrimary(wal, /*batches=*/6);

  WalTailer capped(wal);
  size_t polls = 0;
  uint64_t last_epoch = 0;
  while (true) {
    auto batch = capped.Poll(/*max_batch_bytes=*/1);  // one record per poll
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch->empty()) break;
    ++polls;
    for (const auto& rec : *batch) {
      EXPECT_GT(rec.epoch, last_epoch);
      last_epoch = rec.epoch;
    }
  }
  EXPECT_EQ(last_epoch, db->commit_epoch());
  EXPECT_GT(polls, 1u) << "the cap never split the stream";
}

TEST(WalTailerTest, IncompleteTailIsNotYetCorruptionBehindTailIs) {
  TempDir tmp("tailer_tail");
  ASSERT_TRUE(tmp.ok());
  const std::string full = tmp.path("full.wal");
  auto db = MakePrimary(full, /*batches=*/2);
  uint64_t final_epoch = db->commit_epoch();
  db.reset();

  auto read = ReadWal(full);
  ASSERT_TRUE(read.ok());
  ASSERT_GE(read->records.size(), 2u);

  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Torn tail: everything but the last 3 bytes of the final frame. The
  // tailer hands out the complete prefix and treats the stub as
  // "mid-append" — then delivers the record once the bytes arrive.
  const std::string torn = tmp.path("torn.wal");
  {
    std::ofstream out(torn, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 3));
  }
  WalTailer tailer(torn);
  auto batch = tailer.Poll(kNoCap);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_FALSE(batch->empty());
  EXPECT_LT(batch->back().epoch, final_epoch);
  EXPECT_GT(tailer.known_file_bytes(), tailer.offset());

  {
    std::ofstream out(torn, std::ios::binary | std::ios::app);
    out.write(bytes.data() + bytes.size() - 3, 3);
  }
  auto rest = tailer.Poll(kNoCap);
  ASSERT_TRUE(rest.ok()) << rest.status().ToString();
  ASSERT_EQ(rest->size(), 1u);
  EXPECT_EQ(rest->front().epoch, final_epoch);

  // A complete-length frame with a flipped byte is *behind* the tail an
  // append-only writer extends: permanent corruption, not patience.
  const std::string corrupt = tmp.path("corrupt.wal");
  {
    std::string damaged = bytes;
    damaged[damaged.size() / 2] ^= 0x40;
    std::ofstream out(corrupt, std::ios::binary);
    out.write(damaged.data(), static_cast<std::streamsize>(damaged.size()));
  }
  WalTailer bad(corrupt);
  std::vector<WalTailer::TailedRecord> all;
  Status st = Status::OK();
  while (st.ok()) {
    auto polled = bad.Poll(kNoCap);
    if (!polled.ok()) {
      st = polled.status();
      break;
    }
    if (polled->empty()) break;
    all.insert(all.end(), polled->begin(), polled->end());
  }
  EXPECT_FALSE(st.ok()) << "mid-file corruption must be fatal";
}

// --- Follower apply path --------------------------------------------------

/// Ships every WAL record from `wal` into `follower` through the public
/// apply path, exactly like the wire does.
void ShipAll(const std::string& wal, Database* follower) {
  WalTailer tailer(wal);
  while (true) {
    auto batch = tailer.Poll(kNoCap);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch->empty()) break;
    for (const auto& rec : *batch) {
      auto record = DecodeWalPayload(rec.payload);
      ASSERT_TRUE(record.ok()) << record.status().ToString();
      Status st = follower->ApplyReplicatedEpoch(*record);
      ASSERT_TRUE(st.ok()) << "epoch " << record->epoch << ": "
                           << st.ToString();
    }
  }
}

TEST(ReplicatedApplyTest, StreamedApplyConvergesByteEqualToRecovery) {
  TempDir tmp("repl_apply");
  ASSERT_TRUE(tmp.ok());
  const std::string wal = tmp.path("primary.wal");
  auto primary = MakePrimary(wal, /*batches=*/8);

  // The follower applies the shipped stream; the oracle recovers from the
  // very same log. All three must agree byte-for-byte.
  auto follower = MakeEmptyChain();
  ShipAll(wal, follower.get());

  auto oracle = MakeEmptyChain();
  ASSERT_TRUE(oracle->RecoverFrom(wal).ok());

  EXPECT_EQ(follower->commit_epoch(), primary->commit_epoch());
  std::string primary_state = StateOf(primary.get());
  EXPECT_EQ(StateOf(follower.get()), primary_state);
  EXPECT_EQ(StateOf(oracle.get()), primary_state);
}

TEST(ReplicatedApplyTest, StaleEpochsAreIdempotentSkips) {
  TempDir tmp("repl_stale");
  ASSERT_TRUE(tmp.ok());
  const std::string wal = tmp.path("primary.wal");
  auto primary = MakePrimary(wal, /*batches=*/2);

  auto follower = MakeEmptyChain();
  ShipAll(wal, follower.get());
  const uint64_t epoch = follower->commit_epoch();
  const std::string state = StateOf(follower.get());

  // A reconnect that replays the whole log (lost ack, resume from 0):
  // every record is at or below the commit epoch — applied zero times.
  ShipAll(wal, follower.get());
  EXPECT_EQ(follower->commit_epoch(), epoch);
  EXPECT_EQ(StateOf(follower.get()), state);
}

TEST(ReplicatedApplyTest, SnapshotBootstrapThenTailMatchesPrimary) {
  TempDir tmp("repl_boot");
  ASSERT_TRUE(tmp.ok());
  const std::string wal = tmp.path("primary.wal");
  auto primary = MakePrimary(wal, /*batches=*/3);

  // Bootstrap at the current epoch, exactly what kReplSnapshot carries.
  uint64_t boot_epoch = 0;
  std::string state_payload;
  {
    auto snapshot = primary->OpenSnapshot();
    boot_epoch = snapshot->epoch();
    state_payload = EncodeDatabaseState(primary->schema(), *snapshot);
  }
  auto follower = MakeEmptyChain();
  ASSERT_TRUE(
      follower->LoadReplicatedSnapshot(boot_epoch, state_payload).ok());
  EXPECT_EQ(follower->commit_epoch(), boot_epoch);
  EXPECT_EQ(StateOf(follower.get()), StateOf(primary.get()));

  // The live tail continues past the bootstrap; stale records (<= the
  // bootstrap epoch) skip, later ones apply.
  ASSERT_TRUE(fixtures::ApplyChainBatch(primary.get(), kDepth, kRows, 7, 3)
                  .ok());
  ASSERT_TRUE(fixtures::ApplyChainBatch(primary.get(), kDepth, kRows, 7, 4)
                  .ok());
  ASSERT_TRUE(primary->FlushWalToFile().ok());
  ShipAll(wal, follower.get());
  EXPECT_EQ(follower->commit_epoch(), primary->commit_epoch());
  EXPECT_EQ(StateOf(follower.get()), StateOf(primary.get()));

  // A second bootstrap into a non-fresh database must refuse: the wire
  // twin of RecoverFrom's fresh-database precondition.
  EXPECT_FALSE(
      follower->LoadReplicatedSnapshot(boot_epoch, state_payload).ok());
}

TEST(ReplicatedApplyTest, FollowerRelogsLocallyAndResumesAfterRestart) {
  TempDir tmp("repl_relog");
  ASSERT_TRUE(tmp.ok());
  const std::string primary_wal = tmp.path("primary.wal");
  const std::string follower_wal = tmp.path("follower.wal");
  auto primary = MakePrimary(primary_wal, /*batches=*/5);

  // A durable follower re-logs every applied epoch into its own WAL.
  {
    auto follower = MakeEmptyChain();
    DurabilityOptions opts;
    opts.wal_path = follower_wal;
    opts.fsync_policy = FsyncPolicy::kAlways;
    ASSERT_TRUE(follower->EnableDurability(opts).ok());
    ShipAll(primary_wal, follower.get());
    ASSERT_TRUE(follower->SyncWal().ok());
  }

  // Restart: local recovery lands on the shipped epoch — no wire needed —
  // and a resumed stream has nothing new to apply.
  auto restarted = MakeEmptyChain();
  ASSERT_TRUE(restarted->RecoverFrom(follower_wal).ok());
  EXPECT_EQ(restarted->commit_epoch(), primary->commit_epoch());
  EXPECT_EQ(StateOf(restarted.get()), StateOf(primary.get()));
}

TEST(ReplicatedApplyTest, LocalWriterActivityOnAFollowerIsRefused) {
  TempDir tmp("repl_writer");
  ASSERT_TRUE(tmp.ok());
  const std::string wal = tmp.path("primary.wal");
  auto primary = MakePrimary(wal, /*batches=*/1);

  auto follower = MakeEmptyChain();
  WalTailer tailer(wal);
  auto batch = tailer.Poll(kNoCap);
  ASSERT_TRUE(batch.ok());
  ASSERT_GE(batch->size(), 2u) << "need the seed epoch plus one batch";
  auto seed = DecodeWalPayload(batch->front().payload);
  ASSERT_TRUE(seed.ok());
  auto next = DecodeWalPayload((*batch)[1].payload);
  ASSERT_TRUE(next.ok());
  // The seed lands first so the follower's epoch is past the fresh-database
  // epoch 1 that WriterGuard's publish-on-entry would otherwise mint —
  // the refusal below must come from the busy check, not a stale skip.
  ASSERT_TRUE(follower->ApplyReplicatedEpoch(*seed).ok());
  ASSERT_LT(follower->commit_epoch(), next->epoch);

  // An active writer transaction means the live tables are not a published
  // epoch: applying a replicated record under it could interleave two
  // writers' half-states. Internal error, nothing applied.
  const uint64_t epoch_under_guard = follower->commit_epoch();
  {
    Database::WriterGuard guard(follower.get());
    Status st = follower->ApplyReplicatedEpoch(*next);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
    EXPECT_EQ(follower->commit_epoch(), epoch_under_guard);
  }

  // With the guard gone the same record applies.
  EXPECT_TRUE(follower->ApplyReplicatedEpoch(*next).ok());
  EXPECT_EQ(follower->commit_epoch(), next->epoch);
}

}  // namespace
}  // namespace ufilter::relational
