// MVCC snapshot tables: snapshot stability under concurrent commits,
// epoch-based garbage collection of superseded table versions, the
// read-only pin that excludes lost updates / write skew from the snapshot
// path, and the commit-epoch overflow guard. Runs under TSAN in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fixtures/bookdb.h"
#include "relational/database.h"
#include "relational/query.h"

namespace ufilter::relational {
namespace {

std::unique_ptr<Database> MakeCounterDb() {
  DatabaseSchema schema;
  TableSchema t("counter");
  t.AddColumn("id", ValueType::kInt, true)
      .AddColumn("value", ValueType::kInt)
      .SetPrimaryKey({"id"});
  (void)schema.AddTable(std::move(t));
  auto db = Database::Create(std::move(schema));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(
      (*db)->InsertValues("counter", {{"id", Value::Int(1)},
                                      {"value", Value::Int(0)}})
          .ok());
  (*db)->Checkpoint();
  return std::move(*db);
}

int64_t CounterValue(const Table* table) {
  std::vector<RowId> ids = table->Find(
      {{"id", CompareOp::kEq, Value::Int(1)}}, nullptr);
  EXPECT_EQ(ids.size(), 1u);
  return (*table->GetRow(ids[0]))[1].AsInt();
}

// Rows of `name` visible through `ctx` (snapshot-pinned or live).
size_t RowsSeen(Database* db, const ExecutionContext* ctx,
                const std::string& name) {
  auto table = static_cast<const Database*>(db)->GetTable(ctx, name);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  return (*table)->live_row_count();
}

TEST(MvccTest, SnapshotSeesPublishedStateNotLaterCommits) {
  auto db = MakeCounterDb();
  auto snap = db->OpenSnapshot();
  const uint64_t pinned_epoch = snap->epoch();
  EXPECT_EQ(CounterValue(snap->FindTable("counter")), 0);

  // Commit a new value; the pinned snapshot must not move.
  {
    Database::WriterGuard guard(db.get());
    ASSERT_TRUE(db->UpdateWhere("counter", {{"value", Value::Int(7)}},
                                {{"id", CompareOp::kEq, Value::Int(1)}})
                    .ok());
  }
  EXPECT_GT(db->commit_epoch(), pinned_epoch);
  EXPECT_EQ(CounterValue(snap->FindTable("counter")), 0)
      << "pinned snapshot must be immune to later commits";

  // A snapshot opened after the commit sees the new value.
  auto later = db->OpenSnapshot();
  EXPECT_GT(later->epoch(), pinned_epoch);
  EXPECT_EQ(CounterValue(later->FindTable("counter")), 7);
}

TEST(MvccTest, SnapshotOpenedDuringWriterGuardSeesPreTransactionState) {
  auto db = MakeCounterDb();
  {
    Database::WriterGuard guard(db.get());
    ASSERT_TRUE(db->UpdateWhere("counter", {{"value", Value::Int(42)}},
                                {{"id", CompareOp::kEq, Value::Int(1)}})
                    .ok());
    // Mid-transaction: the mutation must not leak into a fresh snapshot.
    auto snap = db->OpenSnapshot();
    EXPECT_EQ(CounterValue(snap->FindTable("counter")), 0);
  }
  // The guard's release published the transaction as one commit.
  auto snap = db->OpenSnapshot();
  EXPECT_EQ(CounterValue(snap->FindTable("counter")), 42);
}

TEST(MvccTest, SnapshotStabilityUnderConcurrentCommits) {
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto ctx = (*db)->CreateContext();
  auto snap = (*db)->OpenSnapshot();
  ctx->PinReadSnapshot(snap);
  const size_t baseline = RowsSeen(db->get(), ctx.get(), "publisher");

  // One writer thread committing inserts; one reader thread re-reading the
  // pinned snapshot the whole time. The reader must never observe a change
  // (and TSAN must see no race between the writer's copy-on-write commits
  // and the reader's lock-free probes).
  constexpr int kCommits = 64;
  std::atomic<bool> done{false};
  std::atomic<int> divergences{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      if (RowsSeen(db->get(), ctx.get(), "publisher") != baseline) {
        divergences.fetch_add(1);
      }
    }
  });
  std::atomic<int> write_failures{0};
  std::thread writer([&] {
    for (int i = 0; i < kCommits; ++i) {
      Database::WriterGuard guard(db->get());
      auto inserted = (*db)->InsertValues(
          "publisher",
          {{"pubid", Value::String("P" + std::to_string(i))},
           {"pubname", Value::String("pub" + std::to_string(i))}});
      if (!inserted.ok()) ++write_failures;
    }
    done.store(true, std::memory_order_release);
  });
  writer.join();
  reader.join();
  EXPECT_EQ(write_failures.load(), 0);
  EXPECT_EQ(divergences.load(), 0);
  EXPECT_EQ(RowsSeen(db->get(), ctx.get(), "publisher"), baseline);

  // Live state has all commits; a fresh snapshot sees them too.
  ctx->ClearReadSnapshot();
  snap.reset();
  EXPECT_EQ(RowsSeen(db->get(), ctx.get(), "publisher"),
            baseline + kCommits);
}

TEST(MvccTest, SupersededVersionsAreRetiredOnlyAfterLastPinDrops) {
  auto db = MakeCounterDb();
  EngineStats before = db->SnapshotWorkCounters();

  auto snap = db->OpenSnapshot();
  {
    Database::WriterGuard guard(db.get());
    ASSERT_TRUE(db->UpdateWhere("counter", {{"value", Value::Int(1)}},
                                {{"id", CompareOp::kEq, Value::Int(1)}})
                    .ok());
  }
  // The write cloned the pinned table version; while the pin is alive the
  // superseded version must be retained, not collected.
  EXPECT_EQ(db->retained_version_count(), 1u);
  EXPECT_EQ(db->SnapshotWorkCounters().DiffSince(before).versions_retired,
            0u);
  EXPECT_EQ(db->oldest_pinned_epoch(), snap->epoch());

  // Dropping the last pin garbage-collects the superseded version.
  snap.reset();
  EXPECT_EQ(db->retained_version_count(), 0u);
  EXPECT_EQ(db->SnapshotWorkCounters().DiffSince(before).versions_retired,
            1u);
  EXPECT_EQ(db->oldest_pinned_epoch(), db->commit_epoch());
}

TEST(MvccTest, OverlappingPinsRetainEveryObservableVersion) {
  auto db = MakeCounterDb();
  auto snap_a = db->OpenSnapshot();
  {
    Database::WriterGuard guard(db.get());
    ASSERT_TRUE(db->UpdateWhere("counter", {{"value", Value::Int(1)}},
                                {{"id", CompareOp::kEq, Value::Int(1)}})
                    .ok());
  }
  auto snap_b = db->OpenSnapshot();
  {
    Database::WriterGuard guard(db.get());
    ASSERT_TRUE(db->UpdateWhere("counter", {{"value", Value::Int(2)}},
                                {{"id", CompareOp::kEq, Value::Int(1)}})
                    .ok());
  }
  // Three observable versions: value 0 (snap_a), 1 (snap_b), 2 (live).
  EXPECT_EQ(CounterValue(snap_a->FindTable("counter")), 0);
  EXPECT_EQ(CounterValue(snap_b->FindTable("counter")), 1);
  EXPECT_EQ(db->retained_version_count(), 2u);

  // Dropping the *older* pin first releases only its version.
  snap_a.reset();
  EXPECT_EQ(db->retained_version_count(), 1u);
  EXPECT_EQ(CounterValue(snap_b->FindTable("counter")), 1);
  snap_b.reset();
  EXPECT_EQ(db->retained_version_count(), 0u);
}

TEST(MvccTest, LongLivedPinRetainsOnlyItsOwnEpochsVersions) {
  // GC is reference-driven, not horizon-driven: a long-lived pin at epoch E
  // keeps exactly epoch E's tables alive. Versions superseded *after* E are
  // unobservable by any snapshot and must be reclaimed as commits continue
  // — not accumulate until the old pin closes.
  auto db = MakeCounterDb();
  auto snap = db->OpenSnapshot();
  constexpr int kCommits = 50;
  for (int i = 1; i <= kCommits; ++i) {
    Database::WriterGuard guard(db.get());
    ASSERT_TRUE(db->UpdateWhere("counter", {{"value", Value::Int(i)}},
                                {{"id", CompareOp::kEq, Value::Int(1)}})
                    .ok());
  }
  EXPECT_EQ(CounterValue(snap->FindTable("counter")), 0);
  // Only the pinned epoch's table version is retained; the other 49
  // intermediate versions were reclaimed along the way.
  EXPECT_LE(db->retained_version_count(), 1u);
  EXPECT_GE(db->SnapshotWorkCounters().versions_retired,
            static_cast<uint64_t>(kCommits) - 2);
  snap.reset();
  EXPECT_EQ(db->retained_version_count(), 0u);
}

TEST(MvccTest, ZeroEffectAndRejectedMutationsNeverCloneOrPublish) {
  // A mutation that matches nothing (or fails its constraint checks) must
  // not copy-on-write the table or dirty the live state: otherwise every
  // no-op writer request publishes a byte-identical epoch.
  auto db = MakeCounterDb();
  (void)db->OpenSnapshot();  // publish, so a clone *would* be needed
  const uint64_t epoch_before = db->commit_epoch();

  {
    Database::WriterGuard guard(db.get());
    auto del = db->DeleteWhere("counter",
                               {{"id", CompareOp::kEq, Value::Int(777)}});
    ASSERT_TRUE(del.ok());
    EXPECT_EQ(del->deleted_rows, 0);
    auto upd = db->UpdateWhere("counter", {{"value", Value::Int(1)}},
                               {{"id", CompareOp::kEq, Value::Int(777)}});
    ASSERT_TRUE(upd.ok());
    EXPECT_EQ(*upd, 0);
    auto dup = db->InsertValues("counter", {{"id", Value::Int(1)},
                                            {"value", Value::Int(0)}});
    EXPECT_FALSE(dup.ok());  // unique violation, rejected before any write
  }
  EXPECT_EQ(db->commit_epoch(), epoch_before)
      << "no-op transactions must not publish";
  EXPECT_EQ(db->retained_version_count(), 0u)
      << "no-op transactions must not clone";
}

TEST(MvccTest, PinnedContextRefusesBaseTableWritesButAllowsTempScratch) {
  // The snapshot path's write-skew / lost-update exclusion is structural: a
  // context pinned to an epoch is read-only for base tables, so no stale
  // read can ever be turned into a write. (Writers read live state under
  // the single writer lane instead.)
  auto db = MakeCounterDb();
  auto ctx = db->CreateContext();
  ctx->PinReadSnapshot(db->OpenSnapshot());

  auto insert = db->InsertValues(ctx.get(), "counter",
                                 {{"id", Value::Int(9)},
                                  {"value", Value::Int(9)}});
  EXPECT_FALSE(insert.ok());
  auto update = db->UpdateWhere(ctx.get(), "counter",
                                {{"value", Value::Int(9)}},
                                {{"id", CompareOp::kEq, Value::Int(1)}});
  EXPECT_FALSE(update.ok());
  auto del = db->DeleteWhere(ctx.get(), "counter",
                             {{"id", CompareOp::kEq, Value::Int(1)}});
  EXPECT_FALSE(del.ok());
  EXPECT_EQ(CounterValue(*db->GetTable("counter")), 0) << "nothing applied";

  // Session-local scratch stays writable: materialized probe results are
  // not versioned state.
  TableSchema scratch("TAB_scratch");
  scratch.AddColumn("x", ValueType::kInt);
  ASSERT_TRUE(ctx->CreateTempTable(std::move(scratch)).ok());
  EXPECT_TRUE(ctx->BulkLoadTemp("TAB_scratch", {{Value::Int(1)}}).ok());

  // Unpinning restores write access.
  ctx->ClearReadSnapshot();
  EXPECT_TRUE(db->UpdateWhere(ctx.get(), "counter",
                              {{"value", Value::Int(9)}},
                              {{"id", CompareOp::kEq, Value::Int(1)}})
                  .ok());
}

TEST(MvccTest, SerializedWritersNeverLoseUpdates) {
  // The writer-lane protocol (mutual exclusion + live reads) makes
  // read-modify-write cycles safe: two threads incrementing the same
  // counter through the lane must produce exactly the sum.
  auto db = MakeCounterDb();
  std::mutex writer_lane;
  constexpr int kPerThread = 50;
  auto increment = [&] {
    for (int i = 0; i < kPerThread; ++i) {
      std::lock_guard<std::mutex> lane(writer_lane);
      Database::WriterGuard guard(db.get());
      int64_t current = CounterValue(*db->GetTable("counter"));
      ASSERT_TRUE(db->UpdateWhere("counter",
                                  {{"value", Value::Int(current + 1)}},
                                  {{"id", CompareOp::kEq, Value::Int(1)}})
                      .ok());
    }
  };
  std::thread a(increment);
  std::thread b(increment);
  a.join();
  b.join();
  EXPECT_EQ(CounterValue(*db->GetTable("counter")), 2 * kPerThread);
}

TEST(MvccTest, AbandonedWriterTransactionPublishesNoEpoch) {
  // The execute/rollback protocol of escalated check-only requests leaves
  // no net change; a guard marked AbandonPublish must not commit a
  // byte-identical epoch per check (and later snapshots must still see the
  // correct — unchanged — content).
  auto db = MakeCounterDb();
  (void)db->OpenSnapshot();  // force the first publish
  const uint64_t epoch_before = db->commit_epoch();
  {
    Database::WriterGuard guard(db.get());
    guard.AbandonPublish();
    size_t mark = db->Begin();
    ASSERT_TRUE(db->UpdateWhere("counter", {{"value", Value::Int(99)}},
                                {{"id", CompareOp::kEq, Value::Int(1)}})
                    .ok());
    db->Rollback(mark);
  }
  EXPECT_EQ(db->commit_epoch(), epoch_before);
  auto snap = db->OpenSnapshot();
  EXPECT_EQ(snap->epoch(), epoch_before);
  EXPECT_EQ(CounterValue(snap->FindTable("counter")), 0);
  EXPECT_EQ(CounterValue(*db->GetTable("counter")), 0);

  // A *non*-abandoned transaction still publishes.
  {
    Database::WriterGuard guard(db.get());
    ASSERT_TRUE(db->UpdateWhere("counter", {{"value", Value::Int(1)}},
                                {{"id", CompareOp::kEq, Value::Int(1)}})
                    .ok());
  }
  EXPECT_GT(db->commit_epoch(), epoch_before);
}

TEST(MvccTest, CommitEpochOverflowGuardRefusesToWrap) {
  auto db = MakeCounterDb();
  auto first = db->PublishVersion();
  ASSERT_TRUE(first.ok());

  db->set_commit_epoch_for_testing(Database::kMaxCommitEpoch);
  ASSERT_TRUE(db->UpdateWhere("counter", {{"value", Value::Int(5)}},
                              {{"id", CompareOp::kEq, Value::Int(1)}})
                  .ok());
  auto overflow = db->PublishVersion();
  EXPECT_FALSE(overflow.ok()) << "epoch space exhausted must be refused";
  EXPECT_EQ(db->commit_epoch(), Database::kMaxCommitEpoch)
      << "a refused publish must not advance the epoch";

  // Snapshots still work: they pin the last successfully published version
  // (epoch ordering is never violated by a wrap).
  auto snap = db->OpenSnapshot();
  EXPECT_LE(snap->epoch(), Database::kMaxCommitEpoch);

  // WriterGuard swallows the exhaustion (mutations stay live-visible).
  {
    Database::WriterGuard guard(db.get());
    ASSERT_TRUE(db->UpdateWhere("counter", {{"value", Value::Int(6)}},
                                {{"id", CompareOp::kEq, Value::Int(1)}})
                    .ok());
  }
  EXPECT_EQ(CounterValue(*db->GetTable("counter")), 6);
}

TEST(MvccTest, ExhaustedEpochBeforeFirstPublishStillYieldsASnapshot) {
  // Publishing is lazy, so the epoch space can be exhausted (test hook)
  // before anything was ever published. Opening a snapshot — or starting a
  // writer transaction — must still work: the live state is pinned under
  // the terminal epoch instead of crashing on a missing published version.
  auto db = MakeCounterDb();
  db->set_commit_epoch_for_testing(Database::kMaxCommitEpoch);

  auto snap = db->OpenSnapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), Database::kMaxCommitEpoch);
  EXPECT_EQ(CounterValue(snap->FindTable("counter")), 0);
  EXPECT_FALSE(db->PublishVersion().ok());

  {
    Database::WriterGuard guard(db.get());
    ASSERT_TRUE(db->UpdateWhere("counter", {{"value", Value::Int(3)}},
                                {{"id", CompareOp::kEq, Value::Int(1)}})
                    .ok());
    auto mid = db->OpenSnapshot();
    ASSERT_NE(mid, nullptr);
    EXPECT_EQ(CounterValue(mid->FindTable("counter")), 0)
        << "mid-transaction snapshot must still see the pinned state";
  }
  EXPECT_EQ(CounterValue(*db->GetTable("counter")), 3);
}

TEST(MvccTest, SnapshotPinnedQueriesResolveTempTablesLive) {
  // A pinned context still mixes its own temp tables into queries: probe
  // materializations are session scratch, not versioned state.
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto ctx = (*db)->CreateContext();
  QueryEvaluator eval(db->get(), ctx.get());
  SelectQuery mat;
  mat.tables = {{"book", "b"}};
  mat.selects = {{"b", "bookid"}};
  ASSERT_TRUE(eval.MaterializeInto(mat, "TAB_snap").ok());

  ctx->PinReadSnapshot((*db)->OpenSnapshot());
  SelectQuery probe;
  probe.tables = {{"TAB_snap", "t"}};
  probe.selects = {{"t", "bookid"}};
  auto res = eval.Execute(probe);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_FALSE(res->empty());
  ctx->ClearReadSnapshot();
}

}  // namespace
}  // namespace ufilter::relational
