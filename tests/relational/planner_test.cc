// Planner unit tests: join-order and access-path selection (inspected both
// structurally on the PhysicalPlan and behaviorally via EngineStats), plan
// replay counters, hash-join rescue of index-free temp tables, stale-plan
// detection, and the bulk-load path of materialized probes.
#include "relational/planner.h"

#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "relational/query.h"
#include "relational/tpch.h"

namespace ufilter::relational {
namespace {

std::unique_ptr<Database> BookDb() {
  auto db = fixtures::MakeBookDatabase();
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

std::unique_ptr<Database> TpchDb(double scale) {
  tpch::TpchOptions options;
  options.scale = scale;
  auto db = tpch::MakeDatabase(options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

/// Creates an index-free temp table with one int column `k` holding
/// 0, step, 2*step, ... (count rows).
void MakeIntTemp(Database* db, const std::string& name, int count, int step) {
  TableSchema schema(name);
  schema.AddColumn("k", ValueType::kInt);
  ASSERT_TRUE(db->CreateTempTable(schema).ok());
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    rows.push_back({Value::Int(i * step)});
  }
  ASSERT_TRUE(db->BulkLoadTemp(name, std::move(rows)).ok());
}

TEST(PlannerTest, JoinOrderFollowsEstimatedCardinality) {
  auto db = TpchDb(0.5);
  // FROM lists lineitem first, but orders carries a unique-index equality
  // (estimate 1) and lineitem is then reachable through its non-unique
  // l_orderkey index: the planner must flip the order.
  SelectQuery q;
  q.tables = {{"lineitem", "l"}, {"orders", "o"}};
  q.selects = {{"l", "l_linenumber"}};
  q.filters = {{{"o", "o_orderkey"}, CompareOp::kEq, Value::Int(10)}};
  q.joins = {{{"l", "l_orderkey"}, CompareOp::kEq, {"o", "o_orderkey"}}};
  Planner planner(db.get());
  auto plan = planner.Compile(q);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->levels.size(), 2u);
  EXPECT_EQ(plan->levels[0].table_pos, 1);  // orders first
  EXPECT_EQ(plan->levels[0].path, AccessPath::kUniqueLookup);
  EXPECT_EQ(plan->levels[1].table_pos, 0);
  EXPECT_EQ(plan->levels[1].path, AccessPath::kIndexLookup);

  db->ResetWorkCounters();
  QueryEvaluator eval(db.get());
  auto r = eval.ExecutePlan(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->merged.size(), 4u);  // 4 lineitems per order
  EngineStats stats = db->SnapshotWorkCounters();
  EXPECT_EQ(stats.rows_scanned, 0u);
  EXPECT_GE(stats.index_lookups, 2u);
  EXPECT_EQ(stats.plan_replays, 1u);
}

TEST(PlannerTest, TempTableJoinReorderedOntoBaseIndex) {
  // The fig16 shape: a small index-free materialization joined with an
  // indexed base table. FROM order would scan the temp table per orders
  // row; the planner scans the temp table once and drives unique lookups.
  auto db = TpchDb(0.5);
  MakeIntTemp(db.get(), "TAB_ctx", 8, 1);  // o_orderkey 0..7 (1..7 exist)
  SelectQuery q;
  q.tables = {{"orders", "o"}, {"TAB_ctx", "t"}};
  q.selects = {{"o", "o_orderkey"}};
  q.joins = {{{"o", "o_orderkey"}, CompareOp::kEq, {"t", "k"}}};
  Planner planner(db.get());
  auto plan = planner.Compile(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->levels.size(), 2u);
  EXPECT_EQ(plan->levels[0].table_pos, 1);  // temp table scanned once
  EXPECT_EQ(plan->levels[0].path, AccessPath::kScan);
  EXPECT_EQ(plan->levels[1].table_pos, 0);  // orders probed by PK
  EXPECT_EQ(plan->levels[1].path, AccessPath::kUniqueLookup);

  db->ResetWorkCounters();
  QueryEvaluator eval(db.get());
  auto r = eval.ExecutePlan(*plan);
  ASSERT_TRUE(r.ok());
  EngineStats stats = db->SnapshotWorkCounters();
  // One scan of the 8-row temp table; orders is never scanned.
  EXPECT_EQ(stats.rows_scanned, 8u);
  EXPECT_EQ(stats.index_lookups, 8u);
}

TEST(PlannerTest, UnindexedEquiJoinUsesHashJoin) {
  // Neither side indexed on the join column (two index-free temp tables):
  // the nested-loop O(n*m) rescan is replaced by one hash build + n probes.
  auto db = BookDb();
  MakeIntTemp(db.get(), "TAB_a", 50, 1);
  MakeIntTemp(db.get(), "TAB_b", 200, 1);
  SelectQuery q;
  q.tables = {{"TAB_a", "a"}, {"TAB_b", "b"}};
  q.selects = {{"a", "k"}};
  q.joins = {{{"a", "k"}, CompareOp::kEq, {"b", "k"}}};
  Planner planner(db.get());
  auto plan = planner.Compile(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->levels.size(), 2u);
  EXPECT_EQ(plan->levels[0].table_pos, 0);  // smaller side scanned
  EXPECT_EQ(plan->levels[0].path, AccessPath::kScan);
  EXPECT_EQ(plan->levels[1].table_pos, 1);  // larger side hash-built once
  EXPECT_EQ(plan->levels[1].path, AccessPath::kHashJoin);

  db->ResetWorkCounters();
  QueryEvaluator eval(db.get());
  auto r = eval.ExecutePlan(*plan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->merged.size(), 50u);  // 0..49 match
  EngineStats stats = db->SnapshotWorkCounters();
  EXPECT_EQ(stats.hash_join_builds, 1u);
  EXPECT_EQ(stats.hash_join_probes, 50u);
  // Outer scan (50) + one-time build scan (200) — not 50 * 200.
  EXPECT_EQ(stats.rows_scanned, 250u);
}

TEST(PlannerTest, DisjunctiveBranchesCompileToInListUnion) {
  auto db = BookDb();
  SelectQuery base;
  base.tables = {{"book", "b"}};
  base.selects = {{"b", "bookid"}};
  std::vector<std::vector<FilterPredicate>> branches;
  branches.push_back(
      {{{"b", "bookid"}, CompareOp::kEq, Value::String("98001")}});
  branches.push_back(
      {{{"b", "bookid"}, CompareOp::kEq, Value::String("98002")}});
  Planner planner(db.get());
  auto plan = planner.CompileDisjunctive(base, branches);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->levels.size(), 1u);
  EXPECT_EQ(plan->levels[0].path, AccessPath::kInListUnion);
  ASSERT_EQ(plan->levels[0].branch_pins.size(), 2u);
}

TEST(PlannerTest, ReplayCountersDistinguishCompileFromReplay) {
  auto db = BookDb();
  SelectQuery q;
  q.tables = {{"book", "b"}};
  q.selects = {{"b", "bookid"}};
  QueryEvaluator eval(db.get());
  Planner planner(db.get());
  db->ResetWorkCounters();
  auto plan = planner.Compile(q);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(eval.ExecutePlan(*plan).ok());
  ASSERT_TRUE(eval.ExecutePlan(*plan).ok());
  EngineStats stats = db->SnapshotWorkCounters();
  EXPECT_EQ(stats.plans_compiled, 1u);
  EXPECT_EQ(stats.plan_replays, 2u);
  // An ad-hoc Execute compiles each time and is not a replay.
  ASSERT_TRUE(eval.Execute(q).ok());
  stats = db->SnapshotWorkCounters();
  EXPECT_EQ(stats.plans_compiled, 2u);
  EXPECT_EQ(stats.plan_replays, 2u);
}

TEST(PlannerTest, StalePlanRejectedAfterTempTableReshape) {
  auto db = BookDb();
  MakeIntTemp(db.get(), "TAB_s", 3, 1);
  SelectQuery q;
  q.tables = {{"TAB_s", "t"}};
  q.selects = {{"t", "k"}};
  Planner planner(db.get());
  auto plan = planner.Compile(q);
  ASSERT_TRUE(plan.ok());
  QueryEvaluator eval(db.get());
  ASSERT_TRUE(eval.ExecutePlan(*plan).ok());

  // Same shape after re-creation: the plan stays valid.
  ASSERT_TRUE(db->DropTempTable("TAB_s").ok());
  MakeIntTemp(db.get(), "TAB_s", 5, 2);
  auto replay = eval.ExecutePlan(*plan);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->merged.size(), 5u);

  // Different arity: replay must be rejected, not misread slots.
  ASSERT_TRUE(db->DropTempTable("TAB_s").ok());
  TableSchema wide("TAB_s");
  wide.AddColumn("k", ValueType::kInt);
  wide.AddColumn("extra", ValueType::kString);
  ASSERT_TRUE(db->CreateTempTable(wide).ok());
  EXPECT_FALSE(eval.ExecutePlan(*plan).ok());
}

TEST(PlannerTest, BulkLoadedTempRowsRollBackWithSavepoint) {
  auto db = BookDb();
  size_t mark = db->Begin();
  QueryEvaluator eval(db.get());
  SelectQuery q;
  q.tables = {{"book", "b"}};
  q.selects = {{"b", "bookid"}};
  ASSERT_TRUE(eval.MaterializeInto(q, "TAB_m").ok());
  EXPECT_EQ((*db->GetTable("TAB_m"))->live_row_count(), 3u);
  db->Rollback(mark);
  // The bulk-loaded rows are undo-logged: rollback empties the table.
  EXPECT_EQ((*db->GetTable("TAB_m"))->live_row_count(), 0u);
  ASSERT_TRUE(db->DropTempTable("TAB_m").ok());
}

TEST(PlannerTest, BulkLoadTempRejectsBaseTablesAndBadArity) {
  auto db = BookDb();
  EXPECT_FALSE(db->BulkLoadTemp("book", {}).ok());
  MakeIntTemp(db.get(), "TAB_x", 1, 1);
  std::vector<Row> bad;
  bad.push_back({Value::Int(1), Value::Int(2)});
  EXPECT_FALSE(db->BulkLoadTemp("TAB_x", std::move(bad)).ok());
}

TEST(PlannerTest, EstimatesExposeIndexSelectivity) {
  auto db = TpchDb(0.5);
  const Table* lineitem = *db->GetTable("lineitem");
  const Table* orders = *db->GetTable("orders");
  int l_orderkey = lineitem->schema().ColumnIndex("l_orderkey");
  int o_orderkey = orders->schema().ColumnIndex("o_orderkey");
  int l_comment = lineitem->schema().ColumnIndex("l_quantity");
  EXPECT_TRUE(orders->HasUniqueIndexOnColumn(o_orderkey));
  EXPECT_FALSE(lineitem->HasUniqueIndexOnColumn(l_orderkey));
  EXPECT_DOUBLE_EQ(orders->EstimateEqMatches(o_orderkey), 1.0);
  // ~4 lineitems per order through the non-unique FK index.
  EXPECT_NEAR(lineitem->EstimateEqMatches(l_orderkey), 4.0, 0.5);
  // No index: the estimate degrades to the live row count.
  EXPECT_DOUBLE_EQ(lineitem->EstimateEqMatches(l_comment),
                   static_cast<double>(lineitem->live_row_count()));
}

}  // namespace
}  // namespace ufilter::relational
