#include "relational/query.h"

#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "relational/tpch.h"

namespace ufilter::relational {
namespace {

std::unique_ptr<Database> Db() {
  auto db = fixtures::MakeBookDatabase();
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

TEST(QueryTest, SingleTableFilter) {
  auto db = Db();
  QueryEvaluator eval(db.get());
  SelectQuery q;
  q.tables = {{"book", "b"}};
  q.selects = {{"b", "title"}};
  q.filters = {{{"b", "price"}, CompareOp::kLt, Value::Double(40.0)}};
  auto r = eval.Execute(q);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "TCP/IP Illustrated");
}

TEST(QueryTest, JoinWithRowIds) {
  auto db = Db();
  QueryEvaluator eval(db.get());
  SelectQuery q;
  q.tables = {{"book", "b"}, {"publisher", "p"}};
  q.selects = {{"b", "bookid"}, {"p", "pubname"}};
  q.joins = {{{"b", "pubid"}, CompareOp::kEq, {"p", "pubid"}}};
  auto r = eval.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
  // Row ids expose the contributing tuples per FROM entry.
  ASSERT_EQ(r->row_ids[0].size(), 2u);
  const Row* book = (*db->GetTable("book"))->GetRow(r->row_ids[0][0]);
  ASSERT_NE(book, nullptr);
}

TEST(QueryTest, ThreeWayJoinMatchesPaperView) {
  auto db = Db();
  QueryEvaluator eval(db.get());
  SelectQuery q;
  q.tables = {{"book", "b"}, {"publisher", "p"}, {"review", "r"}};
  q.selects = {{"b", "bookid"}, {"r", "reviewid"}};
  q.joins = {{{"b", "pubid"}, CompareOp::kEq, {"p", "pubid"}},
             {{"b", "bookid"}, CompareOp::kEq, {"r", "bookid"}}};
  q.filters = {{{"b", "price"}, CompareOp::kLt, Value::Double(50.0)},
               {{"b", "year"}, CompareOp::kGt, Value::Int(1990)}};
  auto r = eval.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // book 98001's two reviews
}

TEST(QueryTest, EmptyResultOnContradiction) {
  auto db = Db();
  QueryEvaluator eval(db.get());
  SelectQuery q;
  q.tables = {{"book", "b"}};
  q.selects = {{"b", "bookid"}};
  q.filters = {{{"b", "price"}, CompareOp::kGt, Value::Double(50.0)}};
  auto r = eval.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(QueryTest, UnknownAliasRejected) {
  auto db = Db();
  QueryEvaluator eval(db.get());
  SelectQuery q;
  q.tables = {{"book", "b"}};
  q.selects = {{"zzz", "bookid"}};
  EXPECT_FALSE(eval.Execute(q).ok());
}

TEST(QueryTest, DuplicateAliasRejected) {
  auto db = Db();
  QueryEvaluator eval(db.get());
  SelectQuery q;
  q.tables = {{"book", "b"}, {"review", "b"}};
  EXPECT_FALSE(eval.Execute(q).ok());
}

TEST(QueryTest, IndexDrivenJoinDoesNotScanInnerTable) {
  tpch::TpchOptions options;
  options.scale = 1.0;
  auto db = tpch::MakeDatabase(options);
  ASSERT_TRUE(db.ok());
  QueryEvaluator eval(db->get());
  SelectQuery q;
  q.tables = {{"orders", "o"}, {"lineitem", "l"}};
  q.selects = {{"l", "l_linenumber"}};
  q.filters = {{{"o", "o_orderkey"}, CompareOp::kEq, Value::Int(10)}};
  q.joins = {{{"l", "l_orderkey"}, CompareOp::kEq, {"o", "o_orderkey"}}};
  (*db)->stats().Reset();
  auto r = eval.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);  // 4 lineitems per order
  // Both accesses are index lookups; nothing is scanned.
  EXPECT_EQ((*db)->stats().rows_scanned, 0u);
  EXPECT_GE((*db)->stats().index_lookups, 2u);
}

TEST(QueryTest, MaterializeIntoCreatesIndexFreeTempTable) {
  auto db = Db();
  QueryEvaluator eval(db.get());
  SelectQuery q;
  q.tables = {{"book", "b"}};
  q.selects = {{"b", "bookid"}, {"b", "price"}};
  ASSERT_TRUE(eval.MaterializeInto(q, "TAB_book").ok());
  auto t = db->GetTable("TAB_book");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->live_row_count(), 3u);
  EXPECT_FALSE((*t)->HasIndexOn("bookid"));
  // Inferred column types follow the data.
  EXPECT_EQ((*t)->schema().columns()[1].type, ValueType::kDouble);
}

TEST(QueryTest, ToSqlRendering) {
  SelectQuery q;
  q.tables = {{"book", "b"}, {"publisher", "p"}};
  q.selects = {{"b", "bookid"}};
  q.joins = {{{"b", "pubid"}, CompareOp::kEq, {"p", "pubid"}}};
  q.filters = {{{"b", "price"}, CompareOp::kLt, Value::Double(50.0)}};
  EXPECT_EQ(q.ToSql(),
            "SELECT b.bookid FROM book AS b, publisher AS p WHERE "
            "b.pubid = p.pubid AND b.price < 50.00");
}

TEST(TpchTest, CardinalitiesScale) {
  tpch::TpchOptions options;
  options.scale = 0.5;
  auto db = tpch::MakeDatabase(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto card = tpch::CardinalitiesFor(0.5);
  EXPECT_EQ((*(*db)->GetTable("region"))->live_row_count(), 5u);
  EXPECT_EQ((*(*db)->GetTable("nation"))->live_row_count(), 25u);
  EXPECT_EQ((*(*db)->GetTable("customer"))->live_row_count(),
            static_cast<size_t>(card.customers));
  EXPECT_EQ((*(*db)->GetTable("orders"))->live_row_count(),
            static_cast<size_t>(card.customers * 10));
  EXPECT_EQ((*(*db)->GetTable("lineitem"))->live_row_count(),
            static_cast<size_t>(card.customers * 40));
}

TEST(TpchTest, DeterministicForSameSeed) {
  tpch::TpchOptions options;
  options.scale = 0.2;
  auto a = tpch::MakeDatabase(options);
  auto b = tpch::MakeDatabase(options);
  ASSERT_TRUE(a.ok() && b.ok());
  auto ca = (*(*a)->GetTable("customer"))->GetRow(0);
  auto cb = (*(*b)->GetTable("customer"))->GetRow(0);
  ASSERT_NE(ca, nullptr);
  ASSERT_NE(cb, nullptr);
  EXPECT_TRUE(*ca == *cb);
}

TEST(TpchTest, ForeignKeysConsistent) {
  tpch::TpchOptions options;
  options.scale = 0.1;
  auto db = tpch::MakeDatabase(options);
  ASSERT_TRUE(db.ok());
  // Spot-check: every order's customer exists (insert-time FK enforcement
  // makes this structural; verify a sample via query).
  QueryEvaluator eval(db->get());
  SelectQuery q;
  q.tables = {{"orders", "o"}, {"customer", "c"}};
  q.selects = {{"o", "o_orderkey"}};
  q.joins = {{{"o", "o_custkey"}, CompareOp::kEq, {"c", "c_custkey"}}};
  auto r = eval.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), (*(*db)->GetTable("orders"))->live_row_count());
}

}  // namespace
}  // namespace ufilter::relational
