// Columnar read path (relational/columnar.h): lazy per-version build and
// reuse, counter accounting, row-path fallbacks (temp tables, unpinned /
// dirty reads), exact EvalCompare parity of the vectorized predicate
// kernels, typed hash-join builds, and the GC lifetime tie between a column
// cache and its table version. The concurrency storm at the end is the
// TSAN/ASan target: many pinned readers racing one committing writer.
#include "relational/columnar.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "fixtures/bookdb.h"
#include "relational/query.h"

namespace ufilter::relational {
namespace {

using fixtures::MakeBookDatabase;

std::unique_ptr<Database> Db() {
  auto db = MakeBookDatabase();
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(*db);
}

/// `SELECT b.bookid, b.price FROM book b WHERE b.price > 40` — price is
/// unindexed, so this always compiles to a full scan (the columnar target).
SelectQuery PriceQuery() {
  SelectQuery q;
  q.tables = {{"book", "b"}};
  q.selects = {{"b", "bookid"}, {"b", "price"}};
  q.filters = {{{"b", "price"}, CompareOp::kGt, Value::Double(40.0)}};
  return q;
}

TEST(ColumnarTest, LazyBuildOnFirstPinnedScanThenReuse) {
  auto db = Db();
  QueryEvaluator eval(db.get());
  EngineStats before = db->SnapshotWorkCounters();

  db->root_context()->PinReadSnapshot(db->OpenSnapshot());
  auto pinned = eval.Execute(PriceQuery());
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(pinned->rows.size(), 2u);  // 45.00 and 48.00

  EngineStats d = db->SnapshotWorkCounters().DiffSince(before);
  EXPECT_EQ(d.columnar_builds, 1u);
  EXPECT_EQ(d.columnar_scan_rows, 3u);       // all of book, vectorized
  EXPECT_EQ(d.selection_vector_rows, 2u);    // survivors of price > 40
  EXPECT_EQ(d.rows_scanned, 0u);             // the row path never ran

  // Same version, second scan: the cache is shared, not rebuilt.
  auto again = eval.Execute(PriceQuery());
  ASSERT_TRUE(again.ok());
  d = db->SnapshotWorkCounters().DiffSince(before);
  EXPECT_EQ(d.columnar_builds, 1u);
  EXPECT_EQ(d.columnar_scan_rows, 6u);
  db->root_context()->ClearReadSnapshot();

  // Unpinned: identical result through the row path, no columnar traffic.
  EngineStats mid = db->SnapshotWorkCounters();
  auto live = eval.Execute(PriceQuery());
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->rows, pinned->rows);
  EXPECT_EQ(live->row_ids, pinned->row_ids);
  d = db->SnapshotWorkCounters().DiffSince(mid);
  EXPECT_EQ(d.columnar_builds, 0u);
  EXPECT_EQ(d.columnar_scan_rows, 0u);
  EXPECT_EQ(d.rows_scanned, 3u);
}

TEST(ColumnarTest, TempTablesKeepRowPathEvenWhenPinned) {
  auto db = Db();
  QueryEvaluator eval(db.get());
  SelectQuery mat;
  mat.tables = {{"book", "b"}};
  mat.selects = {{"b", "bookid"}, {"b", "price"}};
  ASSERT_TRUE(eval.MaterializeInto(mat, "TAB_scratch").ok());

  db->root_context()->PinReadSnapshot(db->OpenSnapshot());
  EngineStats before = db->SnapshotWorkCounters();
  SelectQuery q;
  q.tables = {{"TAB_scratch", "s"}};
  q.selects = {{"s", "bookid"}};
  q.filters = {{{"s", "price"}, CompareOp::kGt, Value::Double(40.0)}};
  auto r = eval.Execute(q);
  db->root_context()->ClearReadSnapshot();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 2u);

  // Session-local scratch is mutable (not version-protected), so it must
  // never get a column cache — even under a pinned snapshot.
  EngineStats d = db->SnapshotWorkCounters().DiffSince(before);
  EXPECT_EQ(d.columnar_builds, 0u);
  EXPECT_EQ(d.columnar_scan_rows, 0u);
  EXPECT_EQ(d.rows_scanned, 3u);
}

TEST(ColumnarTest, DirtyLiveReadsTakeRowPathWhilePinnedReadersKeepColumns) {
  auto db = Db();
  QueryEvaluator eval(db.get());
  auto snap = db->OpenSnapshot();
  db->root_context()->PinReadSnapshot(snap);
  auto pinned_before_write = eval.Execute(PriceQuery());
  ASSERT_TRUE(pinned_before_write.ok());
  EXPECT_EQ(pinned_before_write->rows.size(), 2u);

  // A writer commits a fourth book (price 50) on its own context. The
  // copy-on-write clone deliberately does not inherit the column cache.
  auto wctx = db->CreateContext();
  {
    Database::WriterGuard guard(db.get());
    auto ins = db->Insert(wctx.get(), "book",
                          {Value::String("98004"), Value::String("Columns"),
                           Value::String("A01"), Value::Double(50.0),
                           Value::Int(2024)});
    ASSERT_TRUE(ins.ok()) << ins.status().ToString();
    wctx->Checkpoint();
  }

  // The pinned reader still sees its epoch, served from the cached columns
  // of the *old* version (no rebuild).
  EngineStats before = db->SnapshotWorkCounters();
  auto pinned_after_write = eval.Execute(PriceQuery());
  ASSERT_TRUE(pinned_after_write.ok());
  EXPECT_EQ(pinned_after_write->rows.size(), 2u);
  EngineStats d = db->SnapshotWorkCounters().DiffSince(before);
  EXPECT_EQ(d.columnar_builds, 0u);
  EXPECT_GT(d.columnar_scan_rows, 0u);

  // Unpinned read of the live tables: row path, sees the new row.
  db->root_context()->ClearReadSnapshot();
  snap.reset();
  before = db->SnapshotWorkCounters();
  auto live = eval.Execute(PriceQuery());
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->rows.size(), 3u);
  d = db->SnapshotWorkCounters().DiffSince(before);
  EXPECT_EQ(d.columnar_builds, 0u);
  EXPECT_EQ(d.rows_scanned, 4u);
}

TEST(ColumnarTest, FilterColumnMatchesEvalCompareForAllOpsAndLiteralTypes) {
  // A table exercising every storage/semantic edge the kernels must get
  // right: NULLs (bitmap), an INT value stored in a DOUBLE column (widened),
  // an integer above 2^53 (double-compare semantics, same as the row path),
  // -0.0, 1e300, and empty strings.
  DatabaseSchema schema;
  TableSchema mix("mix");
  mix.AddColumn("id", ValueType::kInt, /*not_null=*/true);
  mix.AddColumn("i", ValueType::kInt);
  mix.AddColumn("d", ValueType::kDouble);
  mix.AddColumn("s", ValueType::kString);
  mix.SetPrimaryKey({"id"});
  ASSERT_TRUE(schema.AddTable(mix).ok());
  auto db = Database::Create(std::move(schema));
  ASSERT_TRUE(db.ok());
  const int64_t big = (int64_t{1} << 53) + 1;
  const std::vector<Row> rows = {
      {Value::Int(1), Value::Int(-3), Value::Double(-0.0), Value::String("")},
      {Value::Int(2), Value::Null(), Value::Double(2.5), Value::Null()},
      {Value::Int(3), Value::Int(big), Value::Double(1e300),
       Value::String("bb")},
      {Value::Int(4), Value::Int(0), Value::Null(), Value::String("zz")},
      {Value::Int(5), Value::Int(2), Value::Double(2.0), Value::String("b")},
      {Value::Int(6), Value::Int(7), Value::Int(2), Value::String("cc")},
  };
  for (const Row& r : rows) {
    ASSERT_TRUE((*db)->Insert("mix", r).ok());
  }
  auto table = (*db)->GetTable("mix");
  ASSERT_TRUE(table.ok());
  auto col = ColumnarTable::Build(**table);
  ASSERT_EQ(col->row_count(), rows.size());

  const std::vector<RowId> ids = (*table)->AllRowIds();
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  // Literal pool spans NULL, both numeric reps and strings, so every
  // (column type, literal type) pair — including the cross-rank ones, where
  // the total order says numbers sort below strings — is covered.
  const Value literals[] = {
      Value::Null(),        Value::Int(2),       Value::Int(big),
      Value::Double(2.5),   Value::Double(0.0),  Value::Double(2.0),
      Value::String("bb"),  Value::String(""),   Value::String("z")};
  for (int c = 1; c <= 3; ++c) {
    for (const Value& lit : literals) {
      for (CompareOp op : ops) {
        ColumnarTable::Sel sel;
        col->SelectAll(&sel);
        col->FilterColumn(c, op, lit, &sel);
        std::vector<RowId> got;
        for (uint32_t pos : sel) got.push_back(col->row_ids()[pos]);
        std::vector<RowId> want;
        for (RowId id : ids) {
          const Row* r = (*table)->GetRow(id);
          ASSERT_NE(r, nullptr);
          if (EvalCompare((*r)[static_cast<size_t>(c)], op, lit)) {
            want.push_back(id);
          }
        }
        EXPECT_EQ(got, want) << "column " << c << " " << CompareOpSymbol(op)
                             << " " << lit.ToSqlLiteral();
      }
    }
  }
}

TEST(ColumnarTest, ColumnarHashJoinBuildMatchesRowPath) {
  auto db = Db();
  QueryEvaluator eval(db.get());
  // Self-join on review.comment: unindexed (review's PK is composite), so
  // the planner builds a hash table for the inner side.
  SelectQuery q;
  q.tables = {{"review", "r1"}, {"review", "r2"}};
  q.joins = {{{"r1", "comment"}, CompareOp::kEq, {"r2", "comment"}}};
  q.selects = {{"r1", "bookid"}, {"r2", "reviewid"}};

  auto row_path = eval.Execute(q);
  ASSERT_TRUE(row_path.ok()) << row_path.status().ToString();
  ASSERT_FALSE(row_path->rows.empty());  // at least the diagonal

  EngineStats before = db->SnapshotWorkCounters();
  db->root_context()->PinReadSnapshot(db->OpenSnapshot());
  auto col_path = eval.Execute(q);
  db->root_context()->ClearReadSnapshot();
  ASSERT_TRUE(col_path.ok()) << col_path.status().ToString();

  EXPECT_EQ(col_path->column_names, row_path->column_names);
  EXPECT_EQ(col_path->row_ids, row_path->row_ids);
  EXPECT_EQ(col_path->rows, row_path->rows);

  EngineStats d = db->SnapshotWorkCounters().DiffSince(before);
  EXPECT_GT(d.hash_join_builds, 0u);  // still a hash join...
  EXPECT_GT(d.hash_join_probes, 0u);
  EXPECT_GT(d.columnar_scan_rows, 0u);  // ...built from typed columns
}

TEST(ColumnarTest, GcReclaimsColumnsWithTheirVersion) {
  auto db = Db();
  std::weak_ptr<const ColumnarTable> weak;
  {
    auto snap = db->OpenSnapshot();
    const Table* book = snap->FindTable("book");
    ASSERT_NE(book, nullptr);
    auto cols = book->columnar(&db->stats());
    ASSERT_NE(cols, nullptr);
    EXPECT_EQ(cols->row_count(), 3u);
    // Same version, same cache object.
    EXPECT_EQ(book->columnar(&db->stats()).get(), cols.get());
    weak = cols;
  }
  // Snapshot closed but the version is still the published one: alive.
  EXPECT_FALSE(weak.expired());

  // A committed write supersedes the version. Nothing pins the old epoch,
  // so GC frees the old book table — and the columns die with it (the
  // copy-on-write clone never inherited the cache).
  auto wctx = db->CreateContext();
  {
    Database::WriterGuard guard(db.get());
    auto upd = db->UpdateWhere(
        wctx.get(), "book", {{"year", Value::Int(1998)}},
        {{"bookid", CompareOp::kEq, Value::String("98001")}});
    ASSERT_TRUE(upd.ok()) << upd.status().ToString();
    wctx->Checkpoint();
  }
  EXPECT_TRUE(weak.expired());

  // The new version starts cold and builds its own cache on demand.
  EngineStats before = db->SnapshotWorkCounters();
  QueryEvaluator eval(db.get());
  db->root_context()->PinReadSnapshot(db->OpenSnapshot());
  auto r = eval.Execute(PriceQuery());
  db->root_context()->ClearReadSnapshot();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(db->SnapshotWorkCounters().DiffSince(before).columnar_builds, 1u);
}

TEST(ColumnarTest, ConcurrentPinnedScansBuildOnceUnderWriterChurn) {
  auto db = Db();
  std::atomic<int> failures{0};

  // Readers pin, scan (price > 40 — the writer churns *year*, so the
  // answer is always exactly 2), unpin. Each pinned version's cache is
  // built at most once no matter how many readers race on it.
  auto reader = [&] {
    auto ctx = db->CreateContext();
    QueryEvaluator eval(db.get(), ctx.get());
    for (int i = 0; i < 60; ++i) {
      ctx->PinReadSnapshot(db->OpenSnapshot());
      auto r = eval.Execute(PriceQuery());
      if (!r.ok() || r->rows.size() != 2) ++failures;
      ctx->ClearReadSnapshot();
    }
  };
  std::thread writer([&] {
    auto wctx = db->CreateContext();
    for (int i = 0; i < 40; ++i) {
      Database::WriterGuard guard(db.get());
      auto upd = db->UpdateWhere(
          wctx.get(), "book", {{"year", Value::Int(1990 + (i % 10))}},
          {{"bookid", CompareOp::kEq, Value::String("98002")}});
      if (!upd.ok()) ++failures;
      wctx->Checkpoint();
    }
  });
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) readers.emplace_back(reader);
  for (std::thread& t : readers) t.join();
  writer.join();

  EXPECT_EQ(failures.load(), 0);
  EngineStats stats = db->SnapshotWorkCounters();
  EXPECT_GT(stats.columnar_builds, 0u);
  // Builds are bounded by the number of versions that existed (initial +
  // one per committed write), not by the number of scans (3 * 60).
  EXPECT_LE(stats.columnar_builds, 41u);
  EXPECT_GT(stats.selection_vector_rows, 0u);
}

}  // namespace
}  // namespace ufilter::relational
