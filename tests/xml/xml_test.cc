#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "xml/default_view.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace ufilter::xml {
namespace {

TEST(NodeTest, BuildAndNavigate) {
  NodePtr book = Node::Element("book");
  book->AddChild(Node::SimpleElement("bookid", "98001"));
  book->AddChild(Node::SimpleElement("title", "TCP/IP Illustrated"));
  EXPECT_EQ(book->ChildText("bookid"), "98001");
  EXPECT_EQ(book->ElementChildren().size(), 2u);
  EXPECT_EQ(book->FindChild("missing"), nullptr);
  EXPECT_EQ(book->CountElements(), 3u);
}

TEST(NodeTest, RemoveChildReturnsOwnership) {
  NodePtr book = Node::Element("book");
  Node* title = book->AddChild(Node::SimpleElement("title", "X"));
  NodePtr removed = book->RemoveChild(title);
  ASSERT_NE(removed.get(), nullptr);
  EXPECT_EQ(removed->label(), "title");
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_TRUE(book->children().empty());
}

TEST(NodeTest, CloneIsDeepAndEqual) {
  NodePtr book = Node::Element("book");
  book->AddChild(Node::SimpleElement("bookid", "98001"));
  NodePtr copy = book->Clone();
  EXPECT_TRUE(book->Equals(*copy));
  copy->children()[0]->children()[0]->set_label("changed");
  EXPECT_FALSE(book->Equals(*copy));
}

TEST(NodeTest, EqualsIsOrderSensitive) {
  NodePtr a = Node::Element("r");
  a->AddChild(Node::SimpleElement("x", "1"));
  a->AddChild(Node::SimpleElement("y", "2"));
  NodePtr b = Node::Element("r");
  b->AddChild(Node::SimpleElement("y", "2"));
  b->AddChild(Node::SimpleElement("x", "1"));
  EXPECT_FALSE(a->Equals(*b));
}

TEST(ParserTest, RoundTrip) {
  const char* kText =
      "<book><bookid>98001</bookid><title>TCP/IP</title>"
      "<publisher><pubid>A01</pubid></publisher></book>";
  auto parsed = Parse(kText);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string serialized = ToString(**parsed, {.pretty = false});
  auto reparsed = Parse(serialized);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE((*parsed)->Equals(**reparsed));
}

TEST(ParserTest, EntitiesDecodeAndEscape) {
  auto parsed = Parse("<p>Simon &amp; Schuster &lt;Inc&gt;</p>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->TextContent(), "Simon & Schuster <Inc>");
  std::string out = ToString(**parsed, {.pretty = false});
  EXPECT_EQ(out, "<p>Simon &amp; Schuster &lt;Inc&gt;</p>");
}

TEST(ParserTest, SelfClosingAndEmptyElements) {
  auto parsed = Parse("<a><b/><c></c></a>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->ElementChildren().size(), 2u);
  EXPECT_TRUE((*parsed)->FindChild("b")->children().empty());
  EXPECT_TRUE((*parsed)->FindChild("c")->children().empty());
}

TEST(ParserTest, CommentsAndPrologSkipped) {
  auto parsed =
      Parse("<?xml version=\"1.0\"?><!-- hi --><a><!-- x -->1</a>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->TextContent(), "1");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("<a><b></a>").ok());        // mismatched close
  EXPECT_FALSE(Parse("<a>").ok());               // unterminated
  EXPECT_FALSE(Parse("<a></a><b></b>").ok());    // trailing content
  EXPECT_FALSE(Parse("<a>&bogus;</a>").ok());    // unknown entity
  EXPECT_FALSE(Parse("plain text").ok());        // no element
}

TEST(WriterTest, PrettyPrintingNests) {
  NodePtr root = Node::Element("BookView");
  Node* book = root->AddChild(Node::Element("book"));
  book->AddChild(Node::SimpleElement("bookid", "98001"));
  std::string out = ToString(*root);
  EXPECT_NE(out.find("<BookView>\n"), std::string::npos);
  EXPECT_NE(out.find("  <book>\n"), std::string::npos);
  EXPECT_NE(out.find("    <bookid>98001</bookid>\n"), std::string::npos);
}

TEST(DefaultViewTest, MirrorsDatabase) {
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  NodePtr view = DefaultView(**db);
  EXPECT_EQ(view->label(), "DB");
  Node* book = view->FindChild("book");
  ASSERT_NE(book, nullptr);
  EXPECT_EQ(book->FindChildren("row").size(), 3u);
  Node* first = book->FindChildren("row")[0];
  EXPECT_EQ(first->ChildText("bookid"), "98001");
  EXPECT_EQ(first->ChildText("price"), "37.00");
  // NULL-free fixture: every row has all 5 columns.
  EXPECT_EQ(first->ElementChildren().size(), 5u);
}

// --- Malformed-input corpus: these bytes arrive off a socket, so every
// --- failure must be a ParseError Status — never a crash, hang, or UB.

TEST(ParserHardeningTest, EmptyAndWhitespaceOnlyInputs) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("   \n\t  ").ok());
  EXPECT_FALSE(Parse("<!-- only a comment -->").ok());
  EXPECT_FALSE(Parse("<?xml version=\"1.0\"?>").ok());
}

TEST(ParserHardeningTest, TruncatedMidToken) {
  const char* corpus[] = {
      "<",
      "<boo",
      "<book>",
      "<book><title>X</title>",
      "<book></bo",
      "<book></book",
      "<book>text &am",
      "<book><!-- unterminated",
      "<?xml unterminated",
  };
  for (const char* text : corpus) {
    auto got = Parse(text);
    EXPECT_FALSE(got.ok()) << "accepted: " << text;
    EXPECT_TRUE(got.status().IsParseError()) << got.status().ToString();
  }
}

TEST(ParserHardeningTest, EmbeddedNulIsDataNotTerminator) {
  // A NUL inside text content must not truncate parsing.
  std::string text("<a>x\0y</a>", 10);
  auto got = Parse(text);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  std::string expected("x\0y", 3);
  EXPECT_EQ((*got)->TextContent(), expected);

  // A NUL where a tag name belongs is a clean error.
  std::string bad("<\0a>x</\0a>", 10);
  EXPECT_FALSE(Parse(bad).ok());
}

TEST(ParserHardeningTest, MegabyteSingleTokenInputs) {
  // One giant tag name and one giant text run: linear, no crash.
  std::string giant_name(1 << 20, 'a');
  EXPECT_FALSE(Parse("<" + giant_name).ok());
  auto ok = Parse("<" + giant_name + ">t</" + giant_name + ">");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();

  std::string giant_text(1 << 20, 'x');
  auto got = Parse("<a>" + giant_text + "</a>");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ((*got)->TextContent().size(), giant_text.size());
}

TEST(ParserHardeningTest, DeepNestingIsAnErrorNotAStackOverflow) {
  // Hostile nesting past any real document: must come back as Status.
  constexpr int kDepth = 200000;
  std::string deep;
  deep.reserve(static_cast<size_t>(kDepth) * 7 + 16);
  for (int i = 0; i < kDepth; ++i) deep += "<a>";
  deep += "x";
  for (int i = 0; i < kDepth; ++i) deep += "</a>";
  auto got = Parse(deep);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsParseError()) << got.status().ToString();

  // Depth just under the cap still parses.
  std::string shallow;
  for (int i = 0; i < 100; ++i) shallow += "<a>";
  shallow += "x";
  for (int i = 0; i < 100; ++i) shallow += "</a>";
  EXPECT_TRUE(Parse(shallow).ok());
}

}  // namespace
}  // namespace ufilter::xml
