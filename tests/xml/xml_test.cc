#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "xml/default_view.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace ufilter::xml {
namespace {

TEST(NodeTest, BuildAndNavigate) {
  NodePtr book = Node::Element("book");
  book->AddChild(Node::SimpleElement("bookid", "98001"));
  book->AddChild(Node::SimpleElement("title", "TCP/IP Illustrated"));
  EXPECT_EQ(book->ChildText("bookid"), "98001");
  EXPECT_EQ(book->ElementChildren().size(), 2u);
  EXPECT_EQ(book->FindChild("missing"), nullptr);
  EXPECT_EQ(book->CountElements(), 3u);
}

TEST(NodeTest, RemoveChildReturnsOwnership) {
  NodePtr book = Node::Element("book");
  Node* title = book->AddChild(Node::SimpleElement("title", "X"));
  NodePtr removed = book->RemoveChild(title);
  ASSERT_NE(removed.get(), nullptr);
  EXPECT_EQ(removed->label(), "title");
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_TRUE(book->children().empty());
}

TEST(NodeTest, CloneIsDeepAndEqual) {
  NodePtr book = Node::Element("book");
  book->AddChild(Node::SimpleElement("bookid", "98001"));
  NodePtr copy = book->Clone();
  EXPECT_TRUE(book->Equals(*copy));
  copy->children()[0]->children()[0]->set_label("changed");
  EXPECT_FALSE(book->Equals(*copy));
}

TEST(NodeTest, EqualsIsOrderSensitive) {
  NodePtr a = Node::Element("r");
  a->AddChild(Node::SimpleElement("x", "1"));
  a->AddChild(Node::SimpleElement("y", "2"));
  NodePtr b = Node::Element("r");
  b->AddChild(Node::SimpleElement("y", "2"));
  b->AddChild(Node::SimpleElement("x", "1"));
  EXPECT_FALSE(a->Equals(*b));
}

TEST(ParserTest, RoundTrip) {
  const char* kText =
      "<book><bookid>98001</bookid><title>TCP/IP</title>"
      "<publisher><pubid>A01</pubid></publisher></book>";
  auto parsed = Parse(kText);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string serialized = ToString(**parsed, {.pretty = false});
  auto reparsed = Parse(serialized);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE((*parsed)->Equals(**reparsed));
}

TEST(ParserTest, EntitiesDecodeAndEscape) {
  auto parsed = Parse("<p>Simon &amp; Schuster &lt;Inc&gt;</p>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->TextContent(), "Simon & Schuster <Inc>");
  std::string out = ToString(**parsed, {.pretty = false});
  EXPECT_EQ(out, "<p>Simon &amp; Schuster &lt;Inc&gt;</p>");
}

TEST(ParserTest, SelfClosingAndEmptyElements) {
  auto parsed = Parse("<a><b/><c></c></a>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->ElementChildren().size(), 2u);
  EXPECT_TRUE((*parsed)->FindChild("b")->children().empty());
  EXPECT_TRUE((*parsed)->FindChild("c")->children().empty());
}

TEST(ParserTest, CommentsAndPrologSkipped) {
  auto parsed =
      Parse("<?xml version=\"1.0\"?><!-- hi --><a><!-- x -->1</a>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->TextContent(), "1");
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("<a><b></a>").ok());        // mismatched close
  EXPECT_FALSE(Parse("<a>").ok());               // unterminated
  EXPECT_FALSE(Parse("<a></a><b></b>").ok());    // trailing content
  EXPECT_FALSE(Parse("<a>&bogus;</a>").ok());    // unknown entity
  EXPECT_FALSE(Parse("plain text").ok());        // no element
}

TEST(WriterTest, PrettyPrintingNests) {
  NodePtr root = Node::Element("BookView");
  Node* book = root->AddChild(Node::Element("book"));
  book->AddChild(Node::SimpleElement("bookid", "98001"));
  std::string out = ToString(*root);
  EXPECT_NE(out.find("<BookView>\n"), std::string::npos);
  EXPECT_NE(out.find("  <book>\n"), std::string::npos);
  EXPECT_NE(out.find("    <bookid>98001</bookid>\n"), std::string::npos);
}

TEST(DefaultViewTest, MirrorsDatabase) {
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  NodePtr view = DefaultView(**db);
  EXPECT_EQ(view->label(), "DB");
  Node* book = view->FindChild("book");
  ASSERT_NE(book, nullptr);
  EXPECT_EQ(book->FindChildren("row").size(), 3u);
  Node* first = book->FindChildren("row")[0];
  EXPECT_EQ(first->ChildText("bookid"), "98001");
  EXPECT_EQ(first->ChildText("price"), "37.00");
  // NULL-free fixture: every row has all 5 columns.
  EXPECT_EQ(first->ElementChildren().size(), 5u);
}

}  // namespace
}  // namespace ufilter::xml
