// Update-template normalization: the plan-cache key must be insensitive to
// insignificant whitespace and nothing else.
#include "xquery/normalize.h"

#include <gtest/gtest.h>

namespace ufilter::xq {
namespace {

TEST(NormalizeTest, CollapsesWhitespaceRuns) {
  EXPECT_EQ(NormalizeUpdateText("FOR   $b \t IN\n\n  doc"),
            "FOR $b IN doc");
}

TEST(NormalizeTest, TrimsEnds) {
  EXPECT_EQ(NormalizeUpdateText("  \n DELETE $b \n  "), "DELETE $b");
}

TEST(NormalizeTest, WhitespaceVariantsShareOneTemplate) {
  const std::string compact =
      "FOR $book IN document(\"BookView.xml\")/book "
      "WHERE $book/price < 40.00 UPDATE $book { DELETE $book/review }";
  const std::string sprawling =
      "FOR $book IN document(\"BookView.xml\")/book\n"
      "WHERE   $book/price < 40.00\n"
      "UPDATE $book {\n  DELETE $book/review\n}";
  EXPECT_EQ(NormalizeUpdateText(compact), NormalizeUpdateText(sprawling));
  EXPECT_EQ(HashUpdateTemplate(NormalizeUpdateText(compact)),
            HashUpdateTemplate(NormalizeUpdateText(sprawling)));
}

TEST(NormalizeTest, StringLiteralsArePreservedByteForByte) {
  // Whitespace inside quotes is significant; two updates differing only
  // there must not collide.
  const std::string a = "WHERE $b/title/text() = \"Data on the Web\"";
  const std::string b = "WHERE $b/title/text() = \"Data on  the Web\"";
  EXPECT_NE(NormalizeUpdateText(a), NormalizeUpdateText(b));
  EXPECT_EQ(NormalizeUpdateText(a), a);  // already canonical
}

TEST(NormalizeTest, SingleQuotedLiteralsArePreservedToo) {
  const std::string a = "WHERE $b/title/text() = 'Data on the Web'";
  const std::string b = "WHERE $b/title/text() = 'Data on  the Web'";
  EXPECT_NE(NormalizeUpdateText(a), NormalizeUpdateText(b));
  EXPECT_EQ(NormalizeUpdateText(a), a);
  // A double quote inside a single-quoted literal does not open a string.
  EXPECT_EQ(NormalizeUpdateText("WHERE $b/t = 'say \"hi\"'   DELETE  $b"),
            "WHERE $b/t = 'say \"hi\"' DELETE $b");
}

TEST(NormalizeTest, DifferentLiteralsDiffer) {
  EXPECT_NE(NormalizeUpdateText("WHERE $b/k = 1"),
            NormalizeUpdateText("WHERE $b/k = 2"));
  EXPECT_NE(HashUpdateTemplate("WHERE $b/k = 1"),
            HashUpdateTemplate("WHERE $b/k = 2"));
}

TEST(NormalizeTest, HashIsStable) {
  const std::string text = NormalizeUpdateText("DELETE $b");
  EXPECT_EQ(HashUpdateTemplate(text), HashUpdateTemplate(text));
}

}  // namespace
}  // namespace ufilter::xq
