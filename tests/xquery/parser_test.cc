#include "xquery/parser.h"

#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "fixtures/tpch_views.h"

namespace ufilter::xq {
namespace {

TEST(ViewQueryParserTest, ParsesBookView) {
  auto q = ParseViewQuery(fixtures::BookViewQuery());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->root_tag, "BookView");
  ASSERT_EQ(q->flwrs.size(), 2u);

  const Flwr& first = *q->flwrs[0];
  ASSERT_EQ(first.bindings.size(), 2u);
  EXPECT_EQ(first.bindings[0].variable, "book");
  EXPECT_TRUE(first.bindings[0].path.from_document);
  EXPECT_EQ(first.bindings[0].path.steps.size(), 2u);
  EXPECT_EQ(first.bindings[0].path.steps[0], "book");
  ASSERT_EQ(first.conditions.size(), 3u);
  EXPECT_TRUE(first.conditions[0].IsCorrelation());
  EXPECT_FALSE(first.conditions[1].IsCorrelation());
  EXPECT_EQ(first.conditions[1].op, CompareOp::kLt);
  EXPECT_DOUBLE_EQ(first.conditions[1].rhs.literal.AsDouble(), 50.0);

  // RETURN { <book> ... } with a nested FLWR inside.
  ASSERT_EQ(first.contents.size(), 1u);
  ASSERT_EQ(first.contents[0].kind, Content::Kind::kElement);
  const ElementCtor& book = *first.contents[0].element;
  EXPECT_EQ(book.tag, "book");
  ASSERT_EQ(book.children.size(), 5u);  // 3 projections, publisher, FLWR
  EXPECT_EQ(book.children[0].kind, Content::Kind::kProjection);
  EXPECT_EQ(book.children[3].kind, Content::Kind::kElement);
  EXPECT_EQ(book.children[4].kind, Content::Kind::kFlwr);
}

TEST(ViewQueryParserTest, ParsesAllTpchViews) {
  for (const std::string& text :
       {fixtures::VSuccessQuery(), fixtures::VLinearQuery(),
        fixtures::VBushQuery(), fixtures::VFailQuery("region"),
        fixtures::VFailQuery("customer")}) {
    auto q = ParseViewQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
  }
}

TEST(ViewQueryParserTest, BareFlwrGetsDummyRoot) {
  auto q = ParseViewQuery(
      "FOR $b IN document(\"d.xml\")/book/row RETURN { $b/bookid }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->root_tag, "root");
}

TEST(ViewQueryParserTest, Errors) {
  EXPECT_FALSE(ParseViewQuery("<V></V>").ok());          // no FLWR
  EXPECT_FALSE(ParseViewQuery("<V>FOR $x RETURN {}</V>").ok());  // no IN
  EXPECT_FALSE(
      ParseViewQuery("<V>FOR $x IN document(\"d\")/t/row</V>").ok());
  EXPECT_FALSE(ParseViewQuery("<A>FOR $x IN document(\"d\")/t/row RETURN "
                              "{ $x/a }</B>")
                   .ok());  // mismatched root tags
}

TEST(UpdateParserTest, ParsesAllPaperUpdates) {
  for (int u = 1; u <= 13; ++u) {
    auto stmt = ParseUpdate(fixtures::PaperUpdate(u));
    EXPECT_TRUE(stmt.ok()) << "u" << u << ": " << stmt.status().ToString();
  }
}

TEST(UpdateParserTest, InsertPayloadNormalized) {
  auto stmt = ParseUpdate(fixtures::PaperUpdate(4));
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->op, UpdateOpType::kInsert);
  EXPECT_EQ(stmt->target_variable, "root");
  ASSERT_NE(stmt->payload, nullptr);
  EXPECT_EQ(stmt->payload->label(), "book");
  // Quoted payload values are stripped: "98001" -> 98001.
  EXPECT_EQ(stmt->payload->ChildText("bookid"), "98001");
  EXPECT_EQ(stmt->payload->ChildText("title"), "Operating Systems");
}

TEST(UpdateParserTest, DeleteVictimPath) {
  auto stmt = ParseUpdate(fixtures::PaperUpdate(2));
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->op, UpdateOpType::kDelete);
  EXPECT_EQ(stmt->target_variable, "root");
  EXPECT_EQ(stmt->victim.variable, "book");
  ASSERT_EQ(stmt->victim.steps.size(), 1u);
  EXPECT_EQ(stmt->victim.steps[0], "publisher");
  ASSERT_EQ(stmt->conditions.size(), 1u);
  EXPECT_TRUE(stmt->conditions[0].lhs.path.text_fn);
}

TEST(UpdateParserTest, TextFunctionVictim) {
  auto stmt = ParseUpdate(fixtures::PaperUpdate(6));
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->victim.text_fn);
  ASSERT_EQ(stmt->victim.steps.size(), 1u);
  EXPECT_EQ(stmt->victim.steps[0], "bookid");
}

TEST(UpdateParserTest, EqualsBindingForm) {
  // u9 uses `$book = $root/book`.
  auto stmt = ParseUpdate(fixtures::PaperUpdate(9));
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->bindings.size(), 2u);
  EXPECT_EQ(stmt->bindings[1].variable, "book");
  EXPECT_EQ(stmt->bindings[1].path.variable, "root");
}

TEST(UpdateParserTest, ReplaceStatement) {
  auto stmt = ParseUpdate(
      "FOR $book IN document(\"BookView.xml\")/book\n"
      "WHERE $book/bookid/text() = \"98001\"\n"
      "UPDATE $book {\n"
      "  REPLACE $book/price WITH <price>39.99</price>\n"
      "}");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->op, UpdateOpType::kReplace);
  EXPECT_EQ(stmt->victim.steps[0], "price");
  EXPECT_EQ(stmt->payload->TextContent(), "39.99");
}

TEST(UpdateParserTest, Errors) {
  EXPECT_FALSE(ParseUpdate("UPDATE $x { DELETE $x }").ok());  // no FOR
  EXPECT_FALSE(
      ParseUpdate("FOR $x IN document(\"v\") UPDATE $x { }").ok());
  EXPECT_FALSE(
      ParseUpdate("FOR $x IN document(\"v\") UPDATE $x { INSERT }").ok());
  EXPECT_FALSE(ParseUpdate("FOR $x IN document(\"v\") UPDATE $x { INSERT "
                           "<a><b></a> }")
                   .ok());  // malformed payload
}

TEST(UpdateParserTest, PayloadWithPunctuationLexes) {
  auto stmt = ParseUpdate(
      "FOR $b IN document(\"v\")/book UPDATE $b { INSERT "
      "<review><reviewid>001</reviewid>"
      "<comment>Easy read &amp; useful. 5/5 stars!?</comment></review> }");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->payload->ChildText("comment"),
            "Easy read & useful. 5/5 stars!?");
}

}  // namespace
}  // namespace ufilter::xq
