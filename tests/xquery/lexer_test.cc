#include "xquery/lexer.h"

#include <gtest/gtest.h>

namespace ufilter::xq {
namespace {

std::vector<TokenKind> Kinds(const std::string& src) {
  Lexer lexer(src);
  EXPECT_TRUE(lexer.status().ok()) << lexer.status().ToString();
  std::vector<TokenKind> out;
  for (const Token& t : lexer.tokens()) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, SplitsComparisonFromPath) {
  // `$b/price<50.00` must lex as variable, slash, ident, less, number.
  auto kinds = Kinds("$b/price<50.00");
  ASSERT_EQ(kinds.size(), 6u);  // + kEnd
  EXPECT_EQ(kinds[0], TokenKind::kVariable);
  EXPECT_EQ(kinds[1], TokenKind::kSlash);
  EXPECT_EQ(kinds[2], TokenKind::kIdent);
  EXPECT_EQ(kinds[3], TokenKind::kLess);
  EXPECT_EQ(kinds[4], TokenKind::kNumber);
}

TEST(LexerTest, StringsAndNumbers) {
  Lexer lexer("\"Data on the Web\" 48.00 1990 -3");
  ASSERT_TRUE(lexer.status().ok());
  EXPECT_EQ(lexer.tokens()[0].kind, TokenKind::kString);
  EXPECT_EQ(lexer.tokens()[0].text, "Data on the Web");
  EXPECT_EQ(lexer.tokens()[1].text, "48.00");
  EXPECT_EQ(lexer.tokens()[2].text, "1990");
  EXPECT_EQ(lexer.tokens()[3].text, "-3");
}

TEST(LexerTest, VariablesKeepNames) {
  Lexer lexer("$book $publisher_2");
  ASSERT_TRUE(lexer.status().ok());
  EXPECT_EQ(lexer.tokens()[0].text, "book");
  EXPECT_EQ(lexer.tokens()[1].text, "publisher_2");
}

TEST(LexerTest, OffsetsPointIntoSource) {
  std::string src = "FOR $x IN y";
  Lexer lexer(src);
  ASSERT_TRUE(lexer.status().ok());
  EXPECT_EQ(lexer.tokens()[1].offset, 4u);  // $x
  EXPECT_EQ(src.substr(lexer.tokens()[3].offset, 1), "y");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lexer("\"unterminated").status().ok());
  EXPECT_FALSE(Lexer("$ alone").status().ok());
  EXPECT_FALSE(Lexer("back`tick").status().ok());
}

TEST(LexerTest, PayloadPunctuationTolerated) {
  // Characters that only occur inside raw XML payloads lex as filler.
  Lexer lexer("a & b; c.d: e*f @g h-i j?");
  EXPECT_TRUE(lexer.status().ok()) << lexer.status().ToString();
}

}  // namespace
}  // namespace ufilter::xq
