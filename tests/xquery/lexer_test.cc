#include "xquery/lexer.h"

#include <gtest/gtest.h>

namespace ufilter::xq {
namespace {

std::vector<TokenKind> Kinds(const std::string& src) {
  Lexer lexer(src);
  EXPECT_TRUE(lexer.status().ok()) << lexer.status().ToString();
  std::vector<TokenKind> out;
  for (const Token& t : lexer.tokens()) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, SplitsComparisonFromPath) {
  // `$b/price<50.00` must lex as variable, slash, ident, less, number.
  auto kinds = Kinds("$b/price<50.00");
  ASSERT_EQ(kinds.size(), 6u);  // + kEnd
  EXPECT_EQ(kinds[0], TokenKind::kVariable);
  EXPECT_EQ(kinds[1], TokenKind::kSlash);
  EXPECT_EQ(kinds[2], TokenKind::kIdent);
  EXPECT_EQ(kinds[3], TokenKind::kLess);
  EXPECT_EQ(kinds[4], TokenKind::kNumber);
}

TEST(LexerTest, StringsAndNumbers) {
  Lexer lexer("\"Data on the Web\" 48.00 1990 -3");
  ASSERT_TRUE(lexer.status().ok());
  EXPECT_EQ(lexer.tokens()[0].kind, TokenKind::kString);
  EXPECT_EQ(lexer.tokens()[0].text, "Data on the Web");
  EXPECT_EQ(lexer.tokens()[1].text, "48.00");
  EXPECT_EQ(lexer.tokens()[2].text, "1990");
  EXPECT_EQ(lexer.tokens()[3].text, "-3");
}

TEST(LexerTest, VariablesKeepNames) {
  Lexer lexer("$book $publisher_2");
  ASSERT_TRUE(lexer.status().ok());
  EXPECT_EQ(lexer.tokens()[0].text, "book");
  EXPECT_EQ(lexer.tokens()[1].text, "publisher_2");
}

TEST(LexerTest, OffsetsPointIntoSource) {
  std::string src = "FOR $x IN y";
  Lexer lexer(src);
  ASSERT_TRUE(lexer.status().ok());
  EXPECT_EQ(lexer.tokens()[1].offset, 4u);  // $x
  EXPECT_EQ(src.substr(lexer.tokens()[3].offset, 1), "y");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lexer("\"unterminated").status().ok());
  EXPECT_FALSE(Lexer("$ alone").status().ok());
  EXPECT_FALSE(Lexer("back`tick").status().ok());
}

TEST(LexerTest, PayloadPunctuationTolerated) {
  // Characters that only occur inside raw XML payloads lex as filler.
  Lexer lexer("a & b; c.d: e*f @g h-i j?");
  EXPECT_TRUE(lexer.status().ok()) << lexer.status().ToString();
}

// --- Malformed-input corpus: update text arrives off a socket, so every
// --- lexer failure must be a readable ParseError, never a crash.

TEST(LexerHardeningTest, EmptyInputIsJustEnd) {
  Lexer lexer("");
  EXPECT_TRUE(lexer.status().ok());
  ASSERT_EQ(lexer.tokens().size(), 1u);
  EXPECT_EQ(lexer.tokens()[0].kind, TokenKind::kEnd);
}

TEST(LexerHardeningTest, TruncatedMidToken) {
  {
    Lexer lexer("FOR $b IN document(\"defau");  // string cut mid-way
    ASSERT_FALSE(lexer.status().ok());
    EXPECT_TRUE(lexer.status().IsParseError());
  }
  {
    Lexer lexer("FOR $");  // variable cut right after the sigil
    ASSERT_FALSE(lexer.status().ok());
    EXPECT_TRUE(lexer.status().IsParseError());
  }
}

TEST(LexerHardeningTest, EmbeddedNulIsAReadableError) {
  std::string src("FOR $b\0IN", 9);
  Lexer lexer(src);
  ASSERT_FALSE(lexer.status().ok());
  const std::string& msg = lexer.status().message();
  // The offending byte is reported in hex, not embedded raw.
  EXPECT_NE(msg.find("0x00"), std::string::npos) << msg;
  EXPECT_EQ(msg.find('\0'), std::string::npos);
}

TEST(LexerHardeningTest, NonPrintableBytesAreReadableErrors) {
  for (char c : {'\x01', '\x1B', '\x7F', '\xC3'}) {
    Lexer lexer(std::string(1, c));
    ASSERT_FALSE(lexer.status().ok()) << "accepted byte " << int(c);
    EXPECT_TRUE(lexer.status().IsParseError());
    EXPECT_NE(lexer.status().message().find("0x"), std::string::npos)
        << lexer.status().ToString();
  }
}

TEST(LexerHardeningTest, MegabyteSingleTokens) {
  const size_t kBig = 1u << 20;
  {
    Lexer lexer(std::string(kBig, 'a'));  // one giant identifier
    EXPECT_TRUE(lexer.status().ok()) << lexer.status().ToString();
    ASSERT_EQ(lexer.tokens().size(), 2u);  // ident + kEnd
    EXPECT_EQ(lexer.tokens()[0].text.size(), kBig);
  }
  {
    Lexer lexer("\"" + std::string(kBig, 'x') + "\"");  // one giant string
    EXPECT_TRUE(lexer.status().ok()) << lexer.status().ToString();
    ASSERT_EQ(lexer.tokens().size(), 2u);
    EXPECT_EQ(lexer.tokens()[0].kind, TokenKind::kString);
    EXPECT_EQ(lexer.tokens()[0].text.size(), kBig);
  }
}

}  // namespace
}  // namespace ufilter::xq
