#include "ufilter/xml_apply.h"

#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "xml/parser.h"
#include "xquery/parser.h"

namespace ufilter::check {
namespace {

xml::NodePtr SampleView() {
  auto parsed = xml::Parse(R"(
<BookView>
  <book>
    <bookid>98001</bookid>
    <title>TCP/IP Illustrated</title>
    <price>37.00</price>
    <publisher><pubid>A01</pubid></publisher>
    <review><reviewid>001</reviewid><comment>Good</comment></review>
    <review><reviewid>002</reviewid><comment>Useful</comment></review>
  </book>
  <book>
    <bookid>98003</bookid>
    <title>Data on the Web</title>
    <price>48.00</price>
    <publisher><pubid>A01</pubid></publisher>
  </book>
</BookView>)");
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(*parsed);
}

int Apply(xml::Node* root, const std::string& update) {
  auto stmt = xq::ParseUpdate(update);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto n = ApplyUpdateToXml(root, *stmt);
  EXPECT_TRUE(n.ok()) << n.status().ToString();
  return n.ValueOr(-1);
}

TEST(XmlApplyTest, DeleteWithPredicate) {
  xml::NodePtr view = SampleView();
  int n = Apply(view.get(),
                "FOR $book IN document(\"v\")/book WHERE "
                "$book/bookid/text() = \"98001\" UPDATE $book { DELETE "
                "$book/review }");
  EXPECT_EQ(n, 2);
  EXPECT_TRUE(
      view->FindChildren("book")[0]->FindChildren("review").empty());
  // Other book untouched.
  EXPECT_EQ(view->FindChildren("book").size(), 2u);
}

TEST(XmlApplyTest, DeleteWholeElementViaOuterVariable) {
  xml::NodePtr view = SampleView();
  int n = Apply(view.get(),
                "FOR $root IN document(\"v\"), $book = $root/book WHERE "
                "$book/price > 40.00 UPDATE $root { DELETE $book }");
  EXPECT_EQ(n, 1);
  auto books = view->FindChildren("book");
  ASSERT_EQ(books.size(), 1u);
  EXPECT_EQ(books[0]->ChildText("bookid"), "98001");
}

TEST(XmlApplyTest, DeleteTextOnly) {
  xml::NodePtr view = SampleView();
  int n = Apply(view.get(),
                "FOR $book IN document(\"v\")/book, $r IN $book/review "
                "WHERE $r/reviewid/text() = \"001\" UPDATE $book { DELETE "
                "$r/comment/text() }");
  EXPECT_EQ(n, 1);
  xml::Node* review = view->FindChildren("book")[0]->FindChildren("review")[0];
  // NULLed leaf: the whole <comment> element disappears (matching the
  // materializer's NULL-renders-as-absent policy).
  EXPECT_EQ(review->FindChild("comment"), nullptr);
  EXPECT_NE(review->FindChild("reviewid"), nullptr);
}

TEST(XmlApplyTest, InsertAppendsClonePerMatch) {
  xml::NodePtr view = SampleView();
  int n = Apply(view.get(),
                "FOR $book IN document(\"v\")/book UPDATE $book { INSERT "
                "<review><reviewid>009</reviewid></review> }");
  EXPECT_EQ(n, 2);  // both books matched
  EXPECT_EQ(view->FindChildren("book")[0]->FindChildren("review").size(), 3u);
  EXPECT_EQ(view->FindChildren("book")[1]->FindChildren("review").size(), 1u);
}

TEST(XmlApplyTest, ReplaceSwapsElement) {
  xml::NodePtr view = SampleView();
  int n = Apply(view.get(),
                "FOR $book IN document(\"v\")/book WHERE "
                "$book/bookid/text() = \"98003\" UPDATE $book { REPLACE "
                "$book/price WITH <price>44.00</price> }");
  EXPECT_EQ(n, 2);  // one insert + one removal
  EXPECT_EQ(view->FindChildren("book")[1]->ChildText("price"), "44.00");
}

TEST(XmlApplyTest, NumericPredicateComparesNumerically) {
  xml::NodePtr view = SampleView();
  // "37.00" > 40 is false numerically (string compare would differ).
  int n = Apply(view.get(),
                "FOR $book IN document(\"v\")/book WHERE $book/price > "
                "40.00 UPDATE $book { DELETE $book/review }");
  EXPECT_EQ(n, 0);  // 98003 has no reviews; 98001 doesn't match
}

TEST(XmlApplyTest, NoMatchReturnsZero) {
  xml::NodePtr view = SampleView();
  int n = Apply(view.get(),
                "FOR $book IN document(\"v\")/book WHERE "
                "$book/bookid/text() = \"nope\" UPDATE $book { DELETE "
                "$book/review }");
  EXPECT_EQ(n, 0);
}

TEST(XmlApplyTest, UnboundVariableFails) {
  xml::NodePtr view = SampleView();
  auto stmt = xq::ParseUpdate(
      "FOR $book IN document(\"v\")/book UPDATE $ghost { DELETE "
      "$book/review }");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(ApplyUpdateToXml(view.get(), *stmt).ok());
}

}  // namespace
}  // namespace ufilter::check
