// Plan cache behavior: repeated updates compile once, LRU eviction order,
// cached rejections skip STAR, and plans cannot leak across UFilter
// instances (view re-creation invalidates them).
#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "ufilter/checker.h"

namespace ufilter {
namespace {

using check::CheckOptions;
using check::CheckOutcome;
using check::CheckReport;
using check::Translatability;
using check::UFilter;
using relational::EngineStats;

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = fixtures::MakeBookDatabase();
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    auto uf = UFilter::Create(db_.get(), fixtures::BookViewQuery());
    ASSERT_TRUE(uf.ok()) << uf.status().ToString();
    uf_ = std::move(*uf);
  }

  EngineStats Diff(const EngineStats& baseline) {
    return db_->SnapshotWorkCounters().DiffSince(baseline);
  }

  std::unique_ptr<relational::Database> db_;
  std::unique_ptr<UFilter> uf_;
};

TEST_F(PlanCacheTest, FreshReportReadsAsNotRun) {
  CheckReport report;
  EXPECT_EQ(report.outcome, CheckOutcome::kNotRun);
  EXPECT_EQ(report.star_class, Translatability::kUnclassified);
  EXPECT_EQ(report.Describe(), "not run");
}

TEST_F(PlanCacheTest, SecondCheckDoesZeroCompileWork) {
  CheckOptions options;
  options.apply = false;
  CheckReport first = uf_->Check(fixtures::PaperUpdate(8), options);
  EXPECT_EQ(first.outcome, CheckOutcome::kExecuted) << first.Describe();
  EXPECT_FALSE(first.from_plan_cache);

  EngineStats baseline = db_->SnapshotWorkCounters();
  CheckReport second = uf_->Check(fixtures::PaperUpdate(8), options);
  EngineStats diff = Diff(baseline);
  EXPECT_EQ(second.outcome, CheckOutcome::kExecuted) << second.Describe();
  EXPECT_TRUE(second.from_plan_cache);
  EXPECT_EQ(diff.updates_compiled, 0u) << "re-parsed a cached template";
  EXPECT_EQ(diff.star_checks, 0u) << "re-ran STAR for a cached template";
  EXPECT_EQ(diff.plan_cache_hits, 1u);
  EXPECT_EQ(diff.plan_cache_misses, 0u);
  // Outcomes are identical to the cold run.
  EXPECT_EQ(second.star_class, first.star_class);
  EXPECT_EQ(second.rows_affected, first.rows_affected);
}

TEST_F(PlanCacheTest, WhitespaceVariantsShareOnePlan) {
  CheckOptions options;
  options.apply = false;
  (void)uf_->Check(fixtures::PaperUpdate(8), options);
  // Same update with different layout: must hit.
  std::string variant = fixtures::PaperUpdate(8);
  for (size_t pos = variant.find('\n'); pos != std::string::npos;
       pos = variant.find('\n', pos + 3)) {
    variant.replace(pos, 1, "\n\t ");
  }
  EngineStats baseline = db_->SnapshotWorkCounters();
  CheckReport r = uf_->Check(variant, options);
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_TRUE(r.from_plan_cache);
  EXPECT_EQ(Diff(baseline).plan_cache_hits, 1u);
}

TEST_F(PlanCacheTest, CachedUntranslatableRejectedWithoutStar) {
  CheckReport first = uf_->Check(fixtures::PaperUpdate(2));
  EXPECT_EQ(first.outcome, CheckOutcome::kUntranslatable) << first.Describe();

  EngineStats baseline = db_->SnapshotWorkCounters();
  CheckReport second = uf_->Check(fixtures::PaperUpdate(2));
  EngineStats diff = Diff(baseline);
  EXPECT_EQ(second.outcome, CheckOutcome::kUntranslatable);
  EXPECT_EQ(second.star_class, Translatability::kUntranslatable);
  EXPECT_TRUE(second.from_plan_cache);
  EXPECT_EQ(diff.star_checks, 0u);
  EXPECT_EQ(diff.updates_compiled, 0u);
}

TEST_F(PlanCacheTest, CachedParseErrorStaysInvalid) {
  CheckReport first = uf_->Check("THIS IS NOT AN UPDATE");
  EXPECT_EQ(first.outcome, CheckOutcome::kInvalid);
  EngineStats baseline = db_->SnapshotWorkCounters();
  CheckReport second = uf_->Check("THIS  IS   NOT AN UPDATE");
  EXPECT_EQ(second.outcome, CheckOutcome::kInvalid);
  EXPECT_TRUE(second.from_plan_cache);
  EXPECT_EQ(Diff(baseline).updates_compiled, 0u);
}

TEST_F(PlanCacheTest, LruEvictionOrder) {
  // Single shard: deterministic global LRU order.
  uf_->plan_cache().Configure(/*capacity=*/2, /*shards=*/1);
  (void)uf_->Prepare(fixtures::PaperUpdate(8));   // A
  (void)uf_->Prepare(fixtures::PaperUpdate(9));   // B
  (void)uf_->Prepare(fixtures::PaperUpdate(12));  // C -> evicts A
  EXPECT_EQ(uf_->plan_cache().size(), 2u);

  EngineStats baseline = db_->SnapshotWorkCounters();
  bool hit = false;
  (void)uf_->Prepare(fixtures::PaperUpdate(8), &hit);  // A is gone
  EXPECT_FALSE(hit);
  EXPECT_EQ(Diff(baseline).plan_cache_misses, 1u);
}

TEST_F(PlanCacheTest, LookupRefreshesRecency) {
  uf_->plan_cache().Configure(/*capacity=*/2, /*shards=*/1);
  (void)uf_->Prepare(fixtures::PaperUpdate(8));  // A
  (void)uf_->Prepare(fixtures::PaperUpdate(9));  // B
  bool hit = false;
  (void)uf_->Prepare(fixtures::PaperUpdate(8), &hit);  // touch A
  ASSERT_TRUE(hit);
  (void)uf_->Prepare(fixtures::PaperUpdate(12));  // C -> evicts B, not A
  (void)uf_->Prepare(fixtures::PaperUpdate(8), &hit);
  EXPECT_TRUE(hit) << "touched entry was evicted before the older one";
  (void)uf_->Prepare(fixtures::PaperUpdate(9), &hit);
  EXPECT_FALSE(hit) << "least-recently-used entry survived eviction";
}

TEST_F(PlanCacheTest, KeysByRecencyReportsMruFirst) {
  uf_->plan_cache().Configure(/*capacity=*/4, /*shards=*/1);
  (void)uf_->Prepare("DELETE $a");
  (void)uf_->Prepare("DELETE $b");
  std::vector<std::string> keys = uf_->plan_cache().KeysByRecency();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "DELETE $b");
  EXPECT_EQ(keys[1], "DELETE $a");
}

TEST_F(PlanCacheTest, CountersTrackHitsMissesEvictions) {
  uf_->plan_cache().Configure(/*capacity=*/2, /*shards=*/1);
  uf_->plan_cache().ResetCounters();
  (void)uf_->Prepare(fixtures::PaperUpdate(8));   // miss + insert
  (void)uf_->Prepare(fixtures::PaperUpdate(8));   // hit
  (void)uf_->Prepare(fixtures::PaperUpdate(9));   // miss + insert
  (void)uf_->Prepare(fixtures::PaperUpdate(12));  // miss + insert -> evict
  check::PlanCacheCounters c = uf_->plan_cache().counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 3u);
  EXPECT_EQ(c.insertions, 3u);
  EXPECT_EQ(c.evictions, 1u);
}

TEST_F(PlanCacheTest, ShardedCacheStillServesEveryTemplate) {
  // Default shape: sharded. Recency is per shard, but lookups must behave
  // identically: every prepared template is served from the cache.
  EXPECT_GT(uf_->plan_cache().shard_count(), 1u);
  for (int u = 8; u <= 12; ++u) {
    (void)uf_->Prepare(fixtures::PaperUpdate(u));
  }
  for (int u = 8; u <= 12; ++u) {
    bool hit = false;
    (void)uf_->Prepare(fixtures::PaperUpdate(u), &hit);
    EXPECT_TRUE(hit) << "u" << u;
  }
  EXPECT_EQ(uf_->plan_cache().size(), 5u);
}

TEST_F(PlanCacheTest, ClearEmptiesTheCache) {
  (void)uf_->Prepare(fixtures::PaperUpdate(8));
  EXPECT_GT(uf_->plan_cache().size(), 0u);
  uf_->plan_cache().Clear();
  EXPECT_EQ(uf_->plan_cache().size(), 0u);
  bool hit = true;
  (void)uf_->Prepare(fixtures::PaperUpdate(8), &hit);
  EXPECT_FALSE(hit);
}

TEST_F(PlanCacheTest, UsePlanCacheFalseBypassesTheCache) {
  CheckOptions options;
  options.apply = false;
  options.use_plan_cache = false;
  (void)uf_->Check(fixtures::PaperUpdate(8), options);
  EXPECT_EQ(uf_->plan_cache().size(), 0u);
  EngineStats baseline = db_->SnapshotWorkCounters();
  CheckReport r = uf_->Check(fixtures::PaperUpdate(8), options);
  EXPECT_FALSE(r.from_plan_cache);
  EngineStats diff = Diff(baseline);
  EXPECT_EQ(diff.updates_compiled, 1u);
  EXPECT_EQ(diff.plan_cache_hits, 0u);
  EXPECT_EQ(diff.plan_cache_misses, 0u);
}

TEST_F(PlanCacheTest, RecreatedViewInvalidatesOldPlans) {
  auto plan = uf_->Prepare(fixtures::PaperUpdate(8));
  ASSERT_TRUE(plan->parsed());

  // Re-create the U-Filter (same database, same view text): the new
  // instance must reject the old instance's plans and start with a cold
  // cache.
  auto uf2 = UFilter::Create(db_.get(), fixtures::BookViewQuery());
  ASSERT_TRUE(uf2.ok());
  CheckReport stale = (*uf2)->Execute(*plan);
  EXPECT_EQ(stale.outcome, CheckOutcome::kInvalid) << stale.Describe();
  EXPECT_TRUE(stale.error.IsInvalidUpdate());

  EngineStats baseline = db_->SnapshotWorkCounters();
  CheckOptions options;
  options.apply = false;
  CheckReport fresh = (*uf2)->Check(fixtures::PaperUpdate(8), options);
  EXPECT_EQ(fresh.outcome, CheckOutcome::kExecuted) << fresh.Describe();
  EXPECT_FALSE(fresh.from_plan_cache);
  EXPECT_EQ(Diff(baseline).plan_cache_misses, 1u);
}

}  // namespace
}  // namespace ufilter
