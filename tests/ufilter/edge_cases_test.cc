// Edge cases and failure injection across the pipeline: malformed inputs,
// engine-error propagation, replace end-to-end, DOT export, dry-run modes.
#include <gtest/gtest.h>

#include "asg/dot.h"
#include "fixtures/bookdb.h"
#include "ufilter/checker.h"
#include "ufilter/xml_apply.h"
#include "view/diff.h"
#include "xquery/parser.h"

namespace ufilter {
namespace {

using check::CheckOptions;
using check::CheckOutcome;
using check::CheckReport;
using check::Translatability;
using check::UFilter;

class EdgeCasesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = fixtures::MakeBookDatabase();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto uf = UFilter::Create(db_.get(), fixtures::BookViewQuery());
    ASSERT_TRUE(uf.ok());
    uf_ = std::move(*uf);
  }

  std::unique_ptr<relational::Database> db_;
  std::unique_ptr<UFilter> uf_;
};

TEST_F(EdgeCasesTest, ViewCompilationRejectsBrokenQueries) {
  EXPECT_FALSE(UFilter::Create(db_.get(), "not a query").ok());
  EXPECT_FALSE(
      UFilter::Create(db_.get(),
                      "<V>FOR $x IN document(\"d\")/ghost/row RETURN { "
                      "$x/a }</V>")
          .ok());
  // Aggregates are outside the supported fragment and fail at parse time.
  EXPECT_FALSE(UFilter::Create(db_.get(),
                               "<V>FOR $x IN document(\"d\")/book/row "
                               "RETURN { count($x) }</V>")
                   .ok());
}

TEST_F(EdgeCasesTest, ReplaceReviewElementEndToEnd) {
  auto stmt = xq::ParseUpdate(
      "FOR $book IN document(\"v\")/book, $review IN $book/review WHERE "
      "$review/reviewid/text() = \"001\" UPDATE $book { REPLACE $review "
      "WITH <review><reviewid>001</reviewid>"
      "<comment>rewritten</comment></review> }");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto expected = uf_->MaterializeView();
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(check::ApplyUpdateToXml(expected->get(), *stmt).ok());
  CheckReport r = uf_->CheckParsed(*stmt);
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  auto actual = uf_->MaterializeView();
  ASSERT_TRUE(actual.ok());
  // The element moves to the end of the book's children under XML-apply
  // semantics; relationally it keeps its position (ordered by row id).
  // Compare content sets instead of exact order: both views contain the
  // rewritten comment exactly once.
  auto count_comments = [](const xml::Node& root, const std::string& text) {
    int n = 0;
    std::vector<const xml::Node*> stack = {&root};
    while (!stack.empty()) {
      const xml::Node* node = stack.back();
      stack.pop_back();
      if (node->is_element() && node->label() == "comment" &&
          node->TextContent() == text) {
        ++n;
      }
      for (const auto& c : node->children()) stack.push_back(c.get());
    }
    return n;
  };
  EXPECT_EQ(count_comments(**actual, "rewritten"), 1);
  EXPECT_EQ(count_comments(**actual, "A good book on network."), 0);
}

TEST_F(EdgeCasesTest, ReplaceLeafValueEndToEnd) {
  CheckReport r = uf_->Check(
      "FOR $book IN document(\"v\")/book, $review IN $book/review WHERE "
      "$review/reviewid/text() = \"002\" UPDATE $book { REPLACE "
      "$review/comment WITH <comment>terse</comment> }");
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  auto review = db_->GetTable("review");
  auto rows = (*review)->Find(
      {{"reviewid", CompareOp::kEq, Value::String("002")}}, nullptr);
  ASSERT_EQ(rows.size(), 1u);
  int c = (*review)->schema().ColumnIndex("comment");
  EXPECT_EQ((*(*review)->GetRow(rows[0]))[static_cast<size_t>(c)].AsString(),
            "terse");
}

TEST_F(EdgeCasesTest, ReplaceOnMissingVictimGivesZeroTupleWarning) {
  CheckReport r = uf_->Check(
      "FOR $book IN document(\"v\")/book WHERE $book/bookid/text() = "
      "\"98003\" UPDATE $book { REPLACE $book/review WITH "
      "<review><reviewid>001</reviewid><comment>x</comment></review> }");
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_TRUE(r.zero_tuple_warning);
}

TEST_F(EdgeCasesTest, SkippingDataCheckStopsAfterStar) {
  CheckOptions options;
  options.run_data_check = false;
  CheckReport r = uf_->Check(fixtures::PaperUpdate(8), options);
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted);
  EXPECT_TRUE(r.translation.empty());  // nothing was translated/applied
  EXPECT_EQ(r.rows_affected, 0);
  EXPECT_EQ((*db_->GetTable("review"))->live_row_count(), 2u);
}

TEST_F(EdgeCasesTest, ProbesAreReportedForAudit) {
  CheckReport r = uf_->Check(fixtures::PaperUpdate(13));
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted);
  ASSERT_FALSE(r.probes.empty());
  EXPECT_NE(r.probes[0].find("SELECT"), std::string::npos);
}

TEST_F(EdgeCasesTest, DotExportContainsMarksAndEdges) {
  std::string dot = asg::ViewAsgToDot(uf_->view_asg());
  EXPECT_NE(dot.find("digraph ViewASG"), std::string::npos);
  EXPECT_NE(dot.find("unsafe-delete"), std::string::npos);
  EXPECT_NE(dot.find("UCB={book,publisher}"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  std::string base = asg::BaseAsgToDot(uf_->base_asg());
  EXPECT_NE(base.find("publisher -> book"), std::string::npos);
  EXPECT_NE(base.find("book -> review"), std::string::npos);
  // publisher -> review is transitive, not direct.
  EXPECT_EQ(base.find("publisher -> review"), std::string::npos);
}

TEST_F(EdgeCasesTest, EmptyViewStillChecksInserts) {
  // Wipe the data; schema-level checks are unaffected, context checks fire.
  ASSERT_TRUE(db_->DeleteWhere("publisher", {}).ok());
  ASSERT_EQ(db_->TotalRows(), 0u);
  CheckReport r = uf_->Check(fixtures::PaperUpdate(13));
  EXPECT_EQ(r.outcome, CheckOutcome::kDataConflict) << r.Describe();
  // And a root-anchored insert into the (empty) reduced view still works.
  auto db2 = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db2.ok());
  ASSERT_TRUE((*db2)->DeleteWhere("publisher", {}).ok());
  auto uf2 =
      UFilter::Create(db2->get(), fixtures::BookViewNoRepublishQuery());
  ASSERT_TRUE(uf2.ok());
  CheckReport r2 = (*uf2)->Check(
      "FOR $root IN document(\"v\") UPDATE $root { INSERT "
      "<book><bookid>\"1\"</bookid><title>\"T\"</title><price>9.00</price>"
      "<publisher><pubid>N1</pubid><pubname>New</pubname></publisher>"
      "</book> }");
  EXPECT_EQ(r2.outcome, CheckOutcome::kExecuted) << r2.Describe();
  EXPECT_EQ((*db2)->TotalRows(), 2u);
}

TEST_F(EdgeCasesTest, WhitespaceAndCommentsInUpdates) {
  CheckReport r = uf_->Check(
      "  FOR   $book   IN document(\"v\")/book\n\n WHERE $book/price <"
      " 40.00\nUPDATE $book {\n\n  DELETE $book/review\n}\n  ");
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
}

TEST_F(EdgeCasesTest, GarbageInputsNeverCrash) {
  for (const char* garbage :
       {"", "FOR", "FOR $x", "FOR $x IN", "<<><>>", "UPDATE { }",
        "FOR $x IN document(\"v\")/book UPDATE $x {",
        "FOR $x IN document(\"v\")/book UPDATE $x { DELETE }",
        "FOR $x IN document(\"v\")/book UPDATE $x { INSERT <a> }",
        "\xff\xfe\x00garbage", "$$$", "))) {{{"}) {
    CheckReport r = uf_->Check(garbage);
    EXPECT_EQ(r.outcome, CheckOutcome::kInvalid) << garbage;
  }
}

TEST_F(EdgeCasesTest, PredicateOnNestedReviewLeaf) {
  // Predicate inside the nested scope (review) while deleting the review.
  CheckReport r = uf_->Check(
      "FOR $book IN document(\"v\")/book, $review IN $book/review WHERE "
      "$review/reviewid/text() = \"002\" UPDATE $book { DELETE $review }");
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(r.rows_affected, 1);
  EXPECT_EQ((*db_->GetTable("review"))->live_row_count(), 1u);
}

TEST_F(EdgeCasesTest, InsertPerMatchingContext) {
  // No bookid filter: the insert applies to every book in the view; the
  // translation dedupes per anchor but reviewids collide on the second
  // book only if it already has 001 — here both get fresh rows.
  CheckReport r = uf_->Check(
      "FOR $book IN document(\"v\")/book WHERE $book/price > 1.00 UPDATE "
      "$book { INSERT <review><reviewid>777</reviewid>"
      "<comment>bulk</comment></review> }");
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(r.rows_affected, 2);  // one per in-view book
}

TEST_F(EdgeCasesTest, CompiledViewIsReusableAcrossManyChecks) {
  for (int i = 0; i < 50; ++i) {
    CheckReport r = uf_->Check(fixtures::PaperUpdate(12));
    ASSERT_EQ(r.outcome, CheckOutcome::kExecuted);
  }
  // Undo log does not leak across successful checks with apply=true...
  // (zero-tuple updates translate to nothing).
  EXPECT_EQ(db_->undo_log_size(), 0u);
}

}  // namespace
}  // namespace ufilter
