// STAR marking (Rules 1-3, UPoint) and checking (Observations 1-2) against
// the paper's Fig. 8 marks and the Section 7.2 views.
#include "ufilter/star.h"

#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "fixtures/tpch_views.h"
#include "relational/tpch.h"
#include "xquery/parser.h"

namespace ufilter::check {
namespace {

using asg::BaseAsg;
using asg::ViewAsg;
using asg::ViewNode;
using view::AnalyzedView;

struct CompiledView {
  std::unique_ptr<relational::Database> db;
  xq::ViewQuery query;
  std::unique_ptr<AnalyzedView> view;
  std::unique_ptr<ViewAsg> gv;
  BaseAsg gd;

  const ViewNode* Node(const std::vector<std::string>& path) const {
    auto av = view->ResolveElementPath(path);
    if (!av.ok()) return nullptr;
    return gv->NodeForAv(*av);
  }
};

CompiledView Compile(std::unique_ptr<relational::Database> db,
                     const std::string& query_text) {
  CompiledView out;
  out.db = std::move(db);
  auto q = xq::ParseViewQuery(query_text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  out.query = std::move(*q);
  auto v = AnalyzedView::Analyze(out.query, &out.db->schema());
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  out.view = std::move(*v);
  auto gv = ViewAsg::Build(*out.view);
  EXPECT_TRUE(gv.ok()) << gv.status().ToString();
  out.gv = std::move(*gv);
  out.gd = BaseAsg::Build(*out.view);
  EXPECT_TRUE(MarkViewAsg(out.gv.get(), out.gd).ok());
  return out;
}

CompiledView CompileBookView(const std::string& query_text) {
  auto db = fixtures::MakeBookDatabase();
  EXPECT_TRUE(db.ok());
  return Compile(std::move(*db), query_text);
}

CompiledView CompileTpch(const std::string& query_text) {
  relational::tpch::TpchOptions options;
  options.scale = 0.1;
  auto db = relational::tpch::MakeDatabase(options);
  EXPECT_TRUE(db.ok());
  return Compile(std::move(*db), query_text);
}

TEST(StarMarkingTest, Fig8Marks) {
  CompiledView v = CompileBookView(fixtures::BookViewQuery());
  // vC1 book: (dirty | safe-delete, unsafe-insert).
  const ViewNode* vc1 = v.Node({"book"});
  EXPECT_TRUE(vc1->mark.safe_delete);
  EXPECT_FALSE(vc1->mark.safe_insert);
  EXPECT_FALSE(vc1->mark.clean);
  // vC2 publisher-in-book: (dirty | unsafe-delete, unsafe-insert).
  const ViewNode* vc2 = v.Node({"book", "publisher"});
  EXPECT_FALSE(vc2->mark.safe_delete);
  EXPECT_FALSE(vc2->mark.safe_insert);
  EXPECT_FALSE(vc2->mark.clean);
  // vC3 review: (clean | safe-delete, safe-insert).
  const ViewNode* vc3 = v.Node({"book", "review"});
  EXPECT_TRUE(vc3->mark.safe_delete);
  EXPECT_TRUE(vc3->mark.safe_insert);
  EXPECT_TRUE(vc3->mark.clean);
  // vC4 top-level publisher: (dirty | unsafe-delete, safe-insert).
  const ViewNode* vc4 = v.Node({"publisher"});
  EXPECT_FALSE(vc4->mark.safe_delete);
  EXPECT_TRUE(vc4->mark.safe_insert);
  EXPECT_FALSE(vc4->mark.clean);
}

TEST(StarMarkingTest, Rule1MissingJoinMarksSubtreeUnsafe) {
  // BookView with the review correlation removed: the whole review table
  // nests inside every book.
  const char* kQuery = R"(
<V>
FOR $book IN document("d")/book/row,
    $publisher IN document("d")/publisher/row
WHERE ($book/pubid = $publisher/pubid)
RETURN {
  <book>
    $book/bookid,
    FOR $review IN document("d")/review/row
    RETURN { <review> $review/reviewid </review> }
  </book>
}
</V>)";
  CompiledView v = CompileBookView(kQuery);
  const ViewNode* review = v.Node({"book", "review"});
  ASSERT_NE(review, nullptr);
  EXPECT_FALSE(review->mark.safe_delete);
  EXPECT_FALSE(review->mark.safe_insert);
  EXPECT_NE(review->mark.unsafe_delete_reason.find("Rule 1"),
            std::string::npos);
}

TEST(StarMarkingTest, Rule1ImproperJoinMarksSubtreeUnsafe) {
  // Join through non-unique attributes (the paper's title = comment case).
  const char* kQuery = R"(
<V>
FOR $book IN document("d")/book/row
RETURN {
  <book>
    $book/bookid,
    FOR $review IN document("d")/review/row
    WHERE ($book/title = $review/comment)
    RETURN { <review> $review/reviewid </review> }
  </book>
}
</V>)";
  CompiledView v = CompileBookView(kQuery);
  const ViewNode* review = v.Node({"book", "review"});
  ASSERT_NE(review, nullptr);
  EXPECT_FALSE(review->mark.safe_delete);
  EXPECT_FALSE(review->mark.safe_insert);
}

TEST(StarMarkingTest, Rule1CartesianProductAtTopUnsafe) {
  // Two unjoined relations in one top-level FLWR: only one free driver is
  // allowed, so the pair is improper.
  const char* kQuery = R"(
<V>
FOR $book IN document("d")/book/row,
    $publisher IN document("d")/publisher/row
RETURN { <pair> $book/bookid, $publisher/pubid </pair> }
</V>)";
  CompiledView v = CompileBookView(kQuery);
  const ViewNode* pair = v.Node({"pair"});
  ASSERT_NE(pair, nullptr);
  EXPECT_FALSE(pair->mark.safe_delete);
}

TEST(StarMarkingTest, VsuccessAllInternalNodesCleanAndSafe) {
  CompiledView v = CompileTpch(fixtures::VSuccessQuery());
  for (const char* tag : {"region", "nation", "customer", "order",
                          "lineitem"}) {
    std::vector<std::string> path;
    for (const char* step : {"region", "nation", "customer", "order",
                             "lineitem"}) {
      path.push_back(step);
      if (std::string(step) == tag) break;
    }
    const ViewNode* node = v.Node(path);
    ASSERT_NE(node, nullptr) << tag;
    EXPECT_TRUE(node->mark.safe_delete) << tag << ": "
                                        << node->mark.unsafe_delete_reason;
    EXPECT_TRUE(node->mark.safe_insert) << tag << ": "
                                        << node->mark.unsafe_insert_reason;
    EXPECT_TRUE(node->mark.clean) << tag;
    StarVerdict verdict = CheckStar(*v.gv, node->id, xq::UpdateOpType::kDelete);
    EXPECT_EQ(verdict.result, Translatability::kUnconditionallyTranslatable)
        << tag;
  }
}

TEST(StarMarkingTest, VfailRepublishedRelationUnsafeDelete) {
  for (const char* rel : {"region", "nation", "customer", "orders",
                          "lineitem"}) {
    CompiledView v = CompileTpch(fixtures::VFailQuery(rel));
    // The chain element of the republished relation becomes unsafe-delete.
    std::vector<std::string> path;
    for (const char* step : {"region", "nation", "customer", "order",
                             "lineitem"}) {
      path.push_back(step);
      std::string tag = step;
      if (tag == "order") tag = "orders";
      if (tag == rel) break;
    }
    const ViewNode* node = v.Node(path);
    ASSERT_NE(node, nullptr) << rel;
    EXPECT_FALSE(node->mark.safe_delete) << rel;
    StarVerdict verdict = CheckStar(*v.gv, node->id, xq::UpdateOpType::kDelete);
    EXPECT_EQ(verdict.result, Translatability::kUntranslatable) << rel;
  }
}

TEST(StarMarkingTest, VfailOtherLevelsStillSafe) {
  CompiledView v = CompileTpch(fixtures::VFailQuery("region"));
  // Republishing REGION leaves nation/customer deletes safe.
  const ViewNode* nation = v.Node({"region", "nation"});
  EXPECT_TRUE(nation->mark.safe_delete)
      << nation->mark.unsafe_delete_reason;
}

TEST(StarMarkingTest, VbushMarksSafe) {
  CompiledView v = CompileTpch(fixtures::VBushQuery());
  const ViewNode* order = v.Node({"nation", "order"});
  ASSERT_NE(order, nullptr);
  EXPECT_TRUE(order->mark.safe_delete)
      << order->mark.unsafe_delete_reason;
  const ViewNode* lineitem = v.Node({"nation", "order", "lineitem"});
  ASSERT_NE(lineitem, nullptr);
  EXPECT_TRUE(lineitem->mark.safe_delete);
  EXPECT_TRUE(lineitem->mark.clean);
}

TEST(StarCheckingTest, Observation1DeleteVerdicts) {
  CompiledView v = CompileBookView(fixtures::BookViewQuery());
  // (clean | safe-delete) -> unconditional.
  StarVerdict review = CheckStar(*v.gv, v.Node({"book", "review"})->id,
                                 xq::UpdateOpType::kDelete);
  EXPECT_EQ(review.result, Translatability::kUnconditionallyTranslatable);
  // (dirty | safe-delete) -> conditional with minimization.
  StarVerdict book =
      CheckStar(*v.gv, v.Node({"book"})->id, xq::UpdateOpType::kDelete);
  EXPECT_EQ(book.result, Translatability::kConditionallyTranslatable);
  EXPECT_EQ(book.condition, "translation minimization");
  // unsafe-delete -> untranslatable.
  StarVerdict pub = CheckStar(*v.gv, v.Node({"book", "publisher"})->id,
                              xq::UpdateOpType::kDelete);
  EXPECT_EQ(pub.result, Translatability::kUntranslatable);
}

TEST(StarCheckingTest, Observation2InsertVerdicts) {
  CompiledView v = CompileBookView(fixtures::BookViewQuery());
  // (clean | safe-insert) -> unconditional.
  StarVerdict review = CheckStar(*v.gv, v.Node({"book", "review"})->id,
                                 xq::UpdateOpType::kInsert);
  EXPECT_EQ(review.result, Translatability::kUnconditionallyTranslatable);
  // unsafe-insert -> untranslatable.
  StarVerdict book =
      CheckStar(*v.gv, v.Node({"book"})->id, xq::UpdateOpType::kInsert);
  EXPECT_EQ(book.result, Translatability::kUntranslatable);
  // (dirty | safe-insert) -> conditional with duplication consistency.
  StarVerdict pub = CheckStar(*v.gv, v.Node({"publisher"})->id,
                              xq::UpdateOpType::kInsert);
  EXPECT_EQ(pub.result, Translatability::kConditionallyTranslatable);
  EXPECT_EQ(pub.condition, "duplication consistency");
}

TEST(StarCheckingTest, ReplaceCombinesBothDirections) {
  CompiledView v = CompileBookView(fixtures::BookViewQuery());
  // Replace on review (clean/safe both ways) -> unconditional.
  StarVerdict review = CheckStar(*v.gv, v.Node({"book", "review"})->id,
                                 xq::UpdateOpType::kReplace);
  EXPECT_EQ(review.result, Translatability::kUnconditionallyTranslatable);
  // Replace on book: insert side is unsafe -> untranslatable.
  StarVerdict book =
      CheckStar(*v.gv, v.Node({"book"})->id, xq::UpdateOpType::kReplace);
  EXPECT_EQ(book.result, Translatability::kUntranslatable);
}

TEST(StarCheckingTest, RootDeleteAlwaysTranslatable) {
  CompiledView v = CompileBookView(fixtures::BookViewQuery());
  StarVerdict verdict =
      CheckStar(*v.gv, 0, xq::UpdateOpType::kDelete);
  EXPECT_EQ(verdict.result, Translatability::kUnconditionallyTranslatable);
}

TEST(StarCheckingTest, LeafUpdateUsedInPredicateUntranslatable) {
  CompiledView v = CompileBookView(fixtures::BookViewQuery());
  // book.price appears in a selection predicate: changing it has side
  // effects.
  auto av = v.view->ResolveElementPath({"book", "price"});
  ASSERT_TRUE(av.ok());
  const ViewNode* tag = v.gv->NodeForAv(*av);
  ASSERT_NE(tag, nullptr);
  StarVerdict verdict =
      CheckStar(*v.gv, tag->id, xq::UpdateOpType::kDelete);
  EXPECT_EQ(verdict.result, Translatability::kUntranslatable);
}

TEST(StarCheckingTest, LeafProjectedTwiceUntranslatable) {
  CompiledView v = CompileBookView(fixtures::BookViewQuery());
  // publisher.pubname appears in two leaves (vC2 and vC4).
  auto av = v.view->ResolveElementPath({"book", "publisher", "pubname"});
  ASSERT_TRUE(av.ok());
  const ViewNode* tag = v.gv->NodeForAv(*av);
  StarVerdict verdict =
      CheckStar(*v.gv, tag->id, xq::UpdateOpType::kDelete);
  EXPECT_EQ(verdict.result, Translatability::kUntranslatable);
}

TEST(StarCheckingTest, LeafUpdateOnUnconstrainedAttrTranslatable) {
  // review.comment is projected once and used in no predicate.
  CompiledView v = CompileBookView(fixtures::BookViewQuery());
  auto av = v.view->ResolveElementPath({"book", "review", "comment"});
  ASSERT_TRUE(av.ok());
  const ViewNode* tag = v.gv->NodeForAv(*av);
  StarVerdict verdict =
      CheckStar(*v.gv, tag->id, xq::UpdateOpType::kDelete);
  EXPECT_EQ(verdict.result, Translatability::kUnconditionallyTranslatable);
}

TEST(StarMarkingTest, SetNullPolicyShrinksExtendAndUnlocksDeletes) {
  // Under SET NULL, deleting a publisher no longer destroys books, so the
  // top-level publisher list (vC4) stays unsafe only through the *view*
  // dependency — Rule 2 re-evaluates extend(publisher) = {publisher}.
  auto db = fixtures::MakeBookDatabase(relational::DeletePolicy::kSetNull);
  ASSERT_TRUE(db.ok());
  CompiledView v = Compile(std::move(*db), fixtures::BookViewQuery());
  const ViewNode* vc4 = v.Node({"publisher"});
  ASSERT_NE(vc4, nullptr);
  // extend(publisher) = {publisher} under SET NULL, and no other node's
  // UCBinding is disjoint from it... vC1/vC2 still bind publisher, so the
  // delete remains unsafe (the book's nested publisher would vanish).
  EXPECT_FALSE(vc4->mark.safe_delete);
  // But deleting a book no longer risks publisher loss: still safe, and the
  // mark reasoning stays consistent.
  EXPECT_TRUE(v.Node({"book"})->mark.safe_delete);
}

}  // namespace
}  // namespace ufilter::check
