#include "ufilter/translator.h"

#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "ufilter/checker.h"
#include "xquery/parser.h"

namespace ufilter::check {
namespace {

class TranslatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = fixtures::MakeBookDatabase();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto uf = UFilter::Create(db_.get(), fixtures::BookViewQuery());
    ASSERT_TRUE(uf.ok());
    uf_ = std::move(*uf);
  }

  BoundUpdate Bind(const std::string& text) {
    auto stmt = xq::ParseUpdate(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    stmts_.push_back(std::make_unique<xq::UpdateStmt>(std::move(*stmt)));
    auto bound =
        BindUpdate(uf_->analyzed_view(), uf_->view_asg(), *stmts_.back());
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    return std::move(*bound);
  }

  std::unique_ptr<relational::Database> db_;
  std::unique_ptr<UFilter> uf_;
  std::vector<std::unique_ptr<xq::UpdateStmt>> stmts_;
};

TEST_F(TranslatorTest, AnchorProbeComposesViewAndUpdatePredicates) {
  BoundUpdate u = Bind(fixtures::PaperUpdate(13));  // insert review
  Translator t(db_.get(), &uf_->analyzed_view(), &uf_->view_asg());
  auto probe = t.ComposeAnchorProbe(u);
  ASSERT_TRUE(probe.ok());
  std::string sql = probe->ToSql();
  // The paper's PQ2: view predicates + the update's title filter.
  EXPECT_NE(sql.find("book.title = 'Data on the Web'"), std::string::npos)
      << sql;
  EXPECT_NE(sql.find("book.price < 50.00"), std::string::npos) << sql;
  EXPECT_NE(sql.find("book.year > 1990"), std::string::npos) << sql;
  EXPECT_NE(sql.find("book.pubid = publisher.pubid"), std::string::npos)
      << sql;
}

TEST_F(TranslatorTest, WideProbeSelectsAllViewColumns) {
  BoundUpdate u = Bind(fixtures::PaperUpdate(13));
  Translator t(db_.get(), &uf_->analyzed_view(), &uf_->view_asg());
  auto narrow = t.ComposeAnchorProbe(u);
  auto wide = t.ComposeWideProbe(u);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  // The internal strategy retrieves every view column (title, pubname, ...)
  // while the narrow probe sticks to keys and join/predicate columns.
  auto has = [](const relational::SelectQuery& q, const char* col) {
    for (const auto& c : q.selects) {
      if (c.column == col) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(*wide, "title"));
  EXPECT_TRUE(has(*wide, "pubname"));
  EXPECT_FALSE(has(*narrow, "title"));
  EXPECT_FALSE(has(*narrow, "pubname"));
}

TEST_F(TranslatorTest, InsertTranslationFillsForeignKeyFromAnchor) {
  BoundUpdate u = Bind(fixtures::PaperUpdate(13));
  Translator t(db_.get(), &uf_->analyzed_view(), &uf_->view_asg());
  auto anchor_query = t.ComposeAnchorProbe(u);
  ASSERT_TRUE(anchor_query.ok());
  relational::QueryEvaluator eval(db_.get());
  auto anchors = eval.Execute(*anchor_query);
  ASSERT_TRUE(anchors.ok());
  ASSERT_EQ(anchors->size(), 1u);
  auto ops = t.TranslateInsert(u, *anchor_query, *anchors);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 1u);
  const relational::UpdateOp& op = (*ops)[0];
  EXPECT_EQ(op.kind, relational::UpdateOpKind::kInsert);
  EXPECT_EQ(op.table, "review");
  EXPECT_EQ(op.values.at("bookid").AsString(), "98003");  // from the anchor
  EXPECT_EQ(op.values.at("reviewid").AsString(), "001");
  EXPECT_EQ(op.values.at("comment").AsString(), "Easy read and useful.");
}

TEST_F(TranslatorTest, BookInsertEmitsPublisherBeforeBookAndPinsYear) {
  // Use the reduced view where a book insert is schema-safe.
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::BookViewNoRepublishQuery());
  ASSERT_TRUE(uf.ok());
  auto stmt = xq::ParseUpdate(
      "FOR $root IN document(\"BookView.xml\") UPDATE $root { INSERT "
      "<book><bookid>\"90\"</bookid><title>\"T\"</title><price>20.00</price>"
      "<publisher><pubid>Z01</pubid><pubname>Zebra Press</pubname>"
      "</publisher></book> }");
  ASSERT_TRUE(stmt.ok());
  auto bound = BindUpdate((*uf)->analyzed_view(), (*uf)->view_asg(), *stmt);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  Translator t(db->get(), &(*uf)->analyzed_view(), &(*uf)->view_asg());
  auto anchor_query = t.ComposeAnchorProbe(*bound);
  ASSERT_TRUE(anchor_query.ok());
  relational::QueryResult anchors;  // root context: no probe needed
  auto ops = t.TranslateInsert(*bound, *anchor_query, anchors);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 2u);
  // FK topological order: publisher first.
  EXPECT_EQ((*ops)[0].table, "publisher");
  EXPECT_EQ((*ops)[1].table, "book");
  // book.pubid filled from the in-payload join condition.
  EXPECT_EQ((*ops)[1].values.at("pubid").AsString(), "Z01");
  // book.year pinned to satisfy the view predicate year > 1990.
  ASSERT_TRUE((*ops)[1].values.count("year") > 0);
  EXPECT_GT((*ops)[1].values.at("year").AsInt(), 1990);
}

TEST_F(TranslatorTest, DuplicationConsistencyDropsConsistentDuplicate) {
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::BookViewNoRepublishQuery());
  ASSERT_TRUE(uf.ok());
  // Insert a new book reusing the existing publisher A01 with *identical*
  // values: the publisher insert is dropped, the book insert stays.
  CheckReport r = (*uf)->Check(
      "FOR $root IN document(\"BookView.xml\") UPDATE $root { INSERT "
      "<book><bookid>\"90\"</bookid><title>\"T\"</title><price>20.00</price>"
      "<publisher><pubid>A01</pubid><pubname>McGraw-Hill Inc.</pubname>"
      "</publisher></book> }");
  ASSERT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  EXPECT_EQ(r.star_class, Translatability::kConditionallyTranslatable);
  ASSERT_EQ(r.translation.size(), 1u);  // publisher reused
  EXPECT_EQ(r.translation[0].table, "book");
  EXPECT_EQ((*(*uf)->database()->GetTable("publisher"))->live_row_count(),
            3u);
}

TEST_F(TranslatorTest, DuplicationConsistencyRejectsInconsistentDuplicate) {
  auto db = fixtures::MakeBookDatabase();
  ASSERT_TRUE(db.ok());
  auto uf = UFilter::Create(db->get(), fixtures::BookViewNoRepublishQuery());
  ASSERT_TRUE(uf.ok());
  // Same pubid but a different name: inconsistent duplicate.
  CheckReport r = (*uf)->Check(
      "FOR $root IN document(\"BookView.xml\") UPDATE $root { INSERT "
      "<book><bookid>\"90\"</bookid><title>\"T\"</title><price>20.00</price>"
      "<publisher><pubid>A01</pubid><pubname>Wrong Name</pubname>"
      "</publisher></book> }");
  EXPECT_EQ(r.outcome, CheckOutcome::kDataConflict) << r.Describe();
}

TEST_F(TranslatorTest, MinimizationSkipsSharedTuple) {
  BoundUpdate u = Bind(fixtures::PaperUpdate(9));  // delete book > $40
  Translator t(db_.get(), &uf_->analyzed_view(), &uf_->view_asg());
  auto victim_query = t.ComposeVictimProbe(u);
  ASSERT_TRUE(victim_query.ok());
  relational::QueryEvaluator eval(db_.get());
  auto victims = eval.Execute(*victim_query);
  ASSERT_TRUE(victims.ok());
  ASSERT_EQ(victims->size(), 1u);  // book 98003
  auto ops = t.TranslateDelete(u, *victim_query, *victims, /*minimize=*/true);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  // Only the book delete survives; publisher A01 is still referenced.
  ASSERT_EQ(ops->size(), 1u);
  EXPECT_EQ((*ops)[0].table, "book");
}

TEST_F(TranslatorTest, WithoutMinimizationSharedTupleIsDeleted) {
  BoundUpdate u = Bind(fixtures::PaperUpdate(9));
  Translator t(db_.get(), &uf_->analyzed_view(), &uf_->view_asg());
  auto victim_query = t.ComposeVictimProbe(u);
  relational::QueryEvaluator eval(db_.get());
  auto victims = eval.Execute(*victim_query);
  ASSERT_TRUE(victims.ok());
  auto ops =
      t.TranslateDelete(u, *victim_query, *victims, /*minimize=*/false);
  ASSERT_TRUE(ops.ok());
  EXPECT_EQ(ops->size(), 2u);  // blind translation deletes both tuples
}

TEST_F(TranslatorTest, LeafDeleteTranslatesToSetNull) {
  BoundUpdate u = Bind(
      "FOR $book IN document(\"BookView.xml\")/book, $review IN "
      "$book/review WHERE $review/reviewid/text() = \"001\" UPDATE $book { "
      "DELETE $review/comment/text() }");
  Translator t(db_.get(), &uf_->analyzed_view(), &uf_->view_asg());
  auto victim_query = t.ComposeVictimProbe(u);
  ASSERT_TRUE(victim_query.ok());
  relational::QueryEvaluator eval(db_.get());
  auto victims = eval.Execute(*victim_query);
  ASSERT_TRUE(victims.ok());
  auto ops = t.TranslateDelete(u, *victim_query, *victims, false);
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 1u);
  EXPECT_EQ((*ops)[0].kind, relational::UpdateOpKind::kUpdate);
  EXPECT_TRUE((*ops)[0].values.at("comment").is_null());
  std::string sql = (*ops)[0].ToSql();
  EXPECT_NE(sql.find("UPDATE review SET comment = NULL"), std::string::npos)
      << sql;
}

TEST_F(TranslatorTest, UpdateOpSqlRendering) {
  relational::UpdateOp op;
  op.kind = relational::UpdateOpKind::kInsert;
  op.table = "review";
  op.values = {{"bookid", Value::String("98003")},
               {"reviewid", Value::String("001")}};
  EXPECT_EQ(op.ToSql(),
            "INSERT INTO review (bookid, reviewid) VALUES ('98003', '001')");
  op.kind = relational::UpdateOpKind::kDelete;
  op.values.clear();
  op.where = {{"bookid", CompareOp::kEq, Value::String("98003")}};
  EXPECT_EQ(op.ToSql(), "DELETE FROM review WHERE bookid = '98003'");
}

}  // namespace
}  // namespace ufilter::check
