#include "ufilter/validation.h"

#include <gtest/gtest.h>

#include "fixtures/bookdb.h"
#include "ufilter/checker.h"

namespace ufilter::check {
namespace {

using relational::CheckPredicate;

TEST(SatisfiabilityTest, EmptyConjunctionSatisfiable) {
  EXPECT_TRUE(PredicatesSatisfiable({}));
}

TEST(SatisfiabilityTest, PaperU5Case) {
  // view: 0 < price < 50; update: price > 50 -> unsatisfiable.
  EXPECT_FALSE(PredicatesSatisfiable({
      {CompareOp::kGt, Value::Double(0.0)},
      {CompareOp::kLt, Value::Double(50.0)},
      {CompareOp::kGt, Value::Double(50.0)},
  }));
  // price < 40 overlaps -> satisfiable.
  EXPECT_TRUE(PredicatesSatisfiable({
      {CompareOp::kGt, Value::Double(0.0)},
      {CompareOp::kLt, Value::Double(50.0)},
      {CompareOp::kLt, Value::Double(40.0)},
  }));
}

TEST(SatisfiabilityTest, BoundaryCases) {
  // x >= 5 and x <= 5 pins x = 5.
  EXPECT_TRUE(PredicatesSatisfiable(
      {{CompareOp::kGe, Value::Int(5)}, {CompareOp::kLe, Value::Int(5)}}));
  // x > 5 and x <= 5 is empty.
  EXPECT_FALSE(PredicatesSatisfiable(
      {{CompareOp::kGt, Value::Int(5)}, {CompareOp::kLe, Value::Int(5)}}));
  // x >= 5, x <= 5, x != 5 is empty.
  EXPECT_FALSE(PredicatesSatisfiable({{CompareOp::kGe, Value::Int(5)},
                                      {CompareOp::kLe, Value::Int(5)},
                                      {CompareOp::kNe, Value::Int(5)}}));
}

TEST(SatisfiabilityTest, EqualityPins) {
  EXPECT_TRUE(PredicatesSatisfiable(
      {{CompareOp::kEq, Value::Int(7)}, {CompareOp::kLt, Value::Int(10)}}));
  EXPECT_FALSE(PredicatesSatisfiable(
      {{CompareOp::kEq, Value::Int(7)}, {CompareOp::kGt, Value::Int(10)}}));
  EXPECT_FALSE(PredicatesSatisfiable({{CompareOp::kEq, Value::Int(7)},
                                      {CompareOp::kEq, Value::Int(8)}}));
  EXPECT_TRUE(PredicatesSatisfiable({{CompareOp::kEq, Value::Int(7)},
                                     {CompareOp::kEq, Value::Int(7)}}));
}

TEST(SatisfiabilityTest, StringsCompareLexicographically) {
  EXPECT_FALSE(PredicatesSatisfiable(
      {{CompareOp::kEq, Value::String("abc")},
       {CompareOp::kEq, Value::String("abd")}}));
  EXPECT_FALSE(PredicatesSatisfiable(
      {{CompareOp::kLt, Value::String("b")},
       {CompareOp::kGt, Value::String("c")}}));
  EXPECT_TRUE(PredicatesSatisfiable(
      {{CompareOp::kGt, Value::String("b")},
       {CompareOp::kLt, Value::String("c")}}));
}

// Parameterized sweep: a predicate pair (x > a) AND (x < b) is satisfiable
// iff a < b - 1 ... over integers treat dense satisfiability (a < b).
class RangePairTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RangePairTest, OpenIntervalsSatisfiableIffNonEmpty) {
  auto [lo, hi] = GetParam();
  bool sat = PredicatesSatisfiable({{CompareOp::kGt, Value::Double(lo)},
                                    {CompareOp::kLt, Value::Double(hi)}});
  EXPECT_EQ(sat, lo < hi);  // dense domain: (lo, hi) nonempty iff lo < hi
}

INSTANTIATE_TEST_SUITE_P(Sweep, RangePairTest,
                         ::testing::Values(std::make_pair(0, 10),
                                           std::make_pair(10, 0),
                                           std::make_pair(5, 5),
                                           std::make_pair(-3, -2),
                                           std::make_pair(-2, -3)));

// End-to-end validation cases beyond the paper's u1/u5/u6/u7.
class ValidationPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = fixtures::MakeBookDatabase();
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    auto uf = UFilter::Create(db_.get(), fixtures::BookViewQuery());
    ASSERT_TRUE(uf.ok());
    uf_ = std::move(*uf);
  }

  CheckReport Check(const std::string& text) { return uf_->Check(text); }

  std::unique_ptr<relational::Database> db_;
  std::unique_ptr<UFilter> uf_;
};

TEST_F(ValidationPipelineTest, InsertUnknownElementInvalid) {
  CheckReport r = Check(
      "FOR $book IN document(\"BookView.xml\")/book UPDATE $book { INSERT "
      "<isbn>123</isbn> }");
  EXPECT_EQ(r.outcome, CheckOutcome::kInvalid) << r.Describe();
}

TEST_F(ValidationPipelineTest, InsertPayloadWithForeignChildInvalid) {
  CheckReport r = Check(
      "FOR $book IN document(\"BookView.xml\")/book UPDATE $book { INSERT "
      "<review><reviewid>003</reviewid><isbn>1</isbn></review> }");
  EXPECT_EQ(r.outcome, CheckOutcome::kInvalid) << r.Describe();
}

TEST_F(ValidationPipelineTest, InsertPriceOutOfDomainInvalid) {
  CheckReport r = Check(
      "FOR $root IN document(\"BookView.xml\") UPDATE $root { INSERT "
      "<book><bookid>\"90\"</bookid><title>\"T\"</title>"
      "<price>cheap</price>"
      "<publisher><pubid>A01</pubid><pubname>McGraw-Hill Inc.</pubname>"
      "</publisher></book> }");
  EXPECT_EQ(r.outcome, CheckOutcome::kInvalid) << r.Describe();
}

TEST_F(ValidationPipelineTest, InsertSecondPublisherInvalid) {
  CheckReport r = Check(
      "FOR $root IN document(\"BookView.xml\") UPDATE $root { INSERT "
      "<book><bookid>\"90\"</bookid><title>\"T\"</title><price>5.00</price>"
      "<publisher><pubid>A01</pubid><pubname>M</pubname></publisher>"
      "<publisher><pubid>B01</pubid><pubname>P</pubname></publisher>"
      "</book> }");
  EXPECT_EQ(r.outcome, CheckOutcome::kInvalid) << r.Describe();
}

TEST_F(ValidationPipelineTest, InsertPriceViolatingViewPredicateInvalid) {
  // price 60 > view's < 50 bound: the book would be invisible.
  CheckReport r = Check(
      "FOR $root IN document(\"BookView.xml\") UPDATE $root { INSERT "
      "<book><bookid>\"90\"</bookid><title>\"T\"</title><price>60.00</price>"
      "<publisher><pubid>A01</pubid><pubname>McGraw-Hill Inc.</pubname>"
      "</publisher></book> }");
  EXPECT_EQ(r.outcome, CheckOutcome::kInvalid) << r.Describe();
}

TEST_F(ValidationPipelineTest, DeleteMissingElementPathInvalid) {
  CheckReport r = Check(
      "FOR $book IN document(\"BookView.xml\")/book UPDATE $book { DELETE "
      "$book/isbn }");
  EXPECT_EQ(r.outcome, CheckOutcome::kInvalid) << r.Describe();
}

TEST_F(ValidationPipelineTest, DeleteNullableTextValid) {
  // review.comment is nullable: deleting its text is a valid update.
  CheckReport r = Check(
      "FOR $book IN document(\"BookView.xml\")/book, $review IN "
      "$book/review WHERE $review/reviewid/text() = \"001\" UPDATE $book { "
      "DELETE $review/comment/text() }");
  EXPECT_EQ(r.outcome, CheckOutcome::kExecuted) << r.Describe();
  // The comment column is now NULL.
  auto review = db_->GetTable("review");
  auto rows = (*review)->Find(
      {{"reviewid", CompareOp::kEq, Value::String("001")}}, nullptr);
  ASSERT_EQ(rows.size(), 1u);
  const relational::Row* row = (*review)->GetRow(rows[0]);
  int c = (*review)->schema().ColumnIndex("comment");
  EXPECT_TRUE((*row)[static_cast<size_t>(c)].is_null());
}

TEST_F(ValidationPipelineTest, ReplaceLeafWithInvalidValueRejected) {
  CheckReport r = Check(
      "FOR $book IN document(\"BookView.xml\")/book WHERE "
      "$book/bookid/text() = \"98001\" UPDATE $book { REPLACE $book/price "
      "WITH <price>-3.00</price> }");
  EXPECT_EQ(r.outcome, CheckOutcome::kInvalid) << r.Describe();
}

TEST_F(ValidationPipelineTest, UnparsableUpdateInvalid) {
  CheckReport r = Check("DELETE EVERYTHING");
  EXPECT_EQ(r.outcome, CheckOutcome::kInvalid);
  EXPECT_TRUE(r.error.IsParseError());
}

}  // namespace
}  // namespace ufilter::check
