// Fig. 12 reproduction: the classification of the W3C use-case queries.
#include "ufilter/usecases.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace ufilter::check {
namespace {

std::map<std::string, bool> VerdictMap() {
  std::map<std::string, bool> out;
  for (const UseCaseVerdict& v : EvaluateUseCases()) {
    out[v.query->group + "-" + v.query->id] = v.included;
  }
  return out;
}

TEST(UseCasesTest, XmpClassificationMatchesFig12) {
  auto v = VerdictMap();
  for (const char* q : {"Q1", "Q2", "Q3", "Q5", "Q7", "Q8", "Q9", "Q11",
                        "Q12"}) {
    EXPECT_TRUE(v.at(std::string("XMP-") + q)) << q;
  }
  EXPECT_FALSE(v.at("XMP-Q4"));   // Distinct()
  EXPECT_FALSE(v.at("XMP-Q10"));  // Distinct()
  EXPECT_FALSE(v.at("XMP-Q6"));   // Count()
}

TEST(UseCasesTest, TreeClassificationMatchesFig12) {
  auto v = VerdictMap();
  EXPECT_TRUE(v.at("TREE-Q1"));
  EXPECT_TRUE(v.at("TREE-Q2"));
  for (const char* q : {"Q3", "Q4", "Q5", "Q6"}) {
    EXPECT_FALSE(v.at(std::string("TREE-") + q)) << q;
  }
}

TEST(UseCasesTest, RClassificationMatchesFig12) {
  auto v = VerdictMap();
  for (const char* q : {"Q1", "Q3", "Q4", "Q16", "Q17"}) {
    EXPECT_TRUE(v.at(std::string("R-") + q)) << q;
  }
  for (const char* q : {"Q2", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10", "Q11",
                        "Q12", "Q13", "Q14", "Q15"}) {
    EXPECT_FALSE(v.at(std::string("R-") + q)) << q;
  }
  EXPECT_FALSE(v.at("R-Q18"));  // Distinct()
}

TEST(UseCasesTest, CatalogCoversAllFig12Queries) {
  // 12 XMP + 6 TREE + 18 R.
  std::set<std::string> groups;
  int xmp = 0, tree = 0, r = 0;
  for (const UseCaseQuery& q : UseCaseCatalog()) {
    groups.insert(q.group);
    if (q.group == "XMP") ++xmp;
    if (q.group == "TREE") ++tree;
    if (q.group == "R") ++r;
  }
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ(xmp, 12);
  EXPECT_EQ(tree, 6);
  EXPECT_EQ(r, 18);
}

TEST(UseCasesTest, ExcludedQueriesCarryReasons) {
  for (const UseCaseVerdict& v : EvaluateUseCases()) {
    if (!v.included) {
      EXPECT_FALSE(v.reason.empty()) << v.query->id;
    } else {
      EXPECT_TRUE(v.reason.empty());
    }
  }
}

TEST(UseCasesTest, TableRendersAllRows) {
  std::string table = UseCaseTable();
  EXPECT_NE(table.find("XMP-Q1"), std::string::npos);
  EXPECT_NE(table.find("R-Q18"), std::string::npos);
  EXPECT_NE(table.find("Distinct()"), std::string::npos);
  EXPECT_NE(table.find("Count()"), std::string::npos);
}

TEST(UseCasesTest, InclusionCountsMatchPaper) {
  int included = 0;
  for (const UseCaseVerdict& v : EvaluateUseCases()) {
    if (v.included) ++included;
  }
  // 9 XMP + 2 TREE + 5 R = 16 of 36.
  EXPECT_EQ(included, 16);
}

}  // namespace
}  // namespace ufilter::check
