#include "common/value.h"

#include <gtest/gtest.h>

namespace ufilter {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToText(), "");
  EXPECT_EQ(v.ToSqlLiteral(), "NULL");
}

TEST(ValueTest, IntAndDoubleCompareNumerically) {
  EXPECT_TRUE(Value::Int(3) == Value::Double(3.0));
  EXPECT_TRUE(Value::Int(3) < Value::Double(3.5));
  EXPECT_FALSE(Value::Double(4.0) < Value::Int(4));
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  // NULL < numbers < strings.
  EXPECT_TRUE(Value::Null() < Value::Int(-100));
  EXPECT_TRUE(Value::Int(1000000) < Value::String("a"));
  EXPECT_FALSE(Value::String("a") < Value::Int(5));
}

TEST(ValueTest, StringComparison) {
  EXPECT_TRUE(Value::String("abc") < Value::String("abd"));
  EXPECT_TRUE(Value::String("abc") == Value::String("abc"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
}

TEST(ValueTest, ToTextFormatsDoublesLikeThePaper) {
  EXPECT_EQ(Value::Double(37.0).ToText(), "37.00");
  EXPECT_EQ(Value::Double(48.0).ToText(), "48.00");
  EXPECT_EQ(Value::Int(1997).ToText(), "1997");
}

TEST(ValueTest, SqlLiteralEscapesQuotes) {
  EXPECT_EQ(Value::String("O'Brien").ToSqlLiteral(), "'O''Brien'");
}

TEST(ValueTest, FromTextInt) {
  auto v = Value::FromText("42", ValueType::kInt);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 42);
  EXPECT_FALSE(Value::FromText("4x", ValueType::kInt).ok());
}

TEST(ValueTest, FromTextDouble) {
  auto v = Value::FromText("37.5", ValueType::kDouble);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsDouble(), 37.5);
  EXPECT_FALSE(Value::FromText("abc", ValueType::kDouble).ok());
}

TEST(ValueTest, FromTextEmptyIsNullForNonString) {
  auto v = Value::FromText("", ValueType::kInt);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  auto s = Value::FromText("", ValueType::kString);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->is_string());
}

TEST(CompareOpTest, FlipIsInvolutionOnOrderOps) {
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_EQ(FlipCompareOp(FlipCompareOp(op)), op);
  }
}

TEST(CompareOpTest, EvalCompareNullIsFalse) {
  EXPECT_FALSE(EvalCompare(Value::Null(), CompareOp::kEq, Value::Null()));
  EXPECT_FALSE(EvalCompare(Value::Null(), CompareOp::kLt, Value::Int(1)));
  EXPECT_FALSE(EvalCompare(Value::Int(1), CompareOp::kNe, Value::Null()));
}

TEST(CompareOpTest, NullCollapsesToFalseForEveryOp) {
  // Three-valued logic with UNKNOWN collapsed to false: a NULL on either
  // side (or both) makes every comparison — kNe and NULL = NULL included —
  // evaluate to false. Pinned for all six ops so the vectorized columnar
  // kernels have an exhaustive oracle to match.
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  const Value samples[] = {Value::Int(0), Value::Int(-7), Value::Double(2.5),
                           Value::String(""), Value::String("x")};
  for (CompareOp op : ops) {
    EXPECT_FALSE(EvalCompare(Value::Null(), op, Value::Null()))
        << "NULL " << CompareOpSymbol(op) << " NULL";
    for (const Value& v : samples) {
      EXPECT_FALSE(EvalCompare(Value::Null(), op, v))
          << "NULL " << CompareOpSymbol(op) << " " << v.ToSqlLiteral();
      EXPECT_FALSE(EvalCompare(v, op, Value::Null()))
          << v.ToSqlLiteral() << " " << CompareOpSymbol(op) << " NULL";
    }
  }
  // Deliberate contrast: the *total order* (sort/index comparator) does
  // group NULLs together — only EvalCompare collapses UNKNOWN.
  EXPECT_TRUE(Value::Null() == Value::Null());
  EXPECT_TRUE(Value::Null() < Value::Int(0));
}

TEST(CompareOpTest, CrossTypeComparisonsFollowTheTotalOrder) {
  // Non-NULL operands of different type ranks are ordered, not errors:
  // numbers sort below strings, so 5 < 'x' is true and 5 = 'x' is false.
  EXPECT_TRUE(EvalCompare(Value::Int(5), CompareOp::kLt, Value::String("x")));
  EXPECT_TRUE(EvalCompare(Value::Int(5), CompareOp::kNe, Value::String("x")));
  EXPECT_FALSE(EvalCompare(Value::Int(5), CompareOp::kEq, Value::String("x")));
  EXPECT_FALSE(EvalCompare(Value::Int(5), CompareOp::kGe, Value::String("")));
  EXPECT_TRUE(
      EvalCompare(Value::String(""), CompareOp::kGt, Value::Double(1e300)));
}

TEST(CompareOpTest, EvalCompareAllOps) {
  Value a = Value::Int(3), b = Value::Int(5);
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLt, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kLe, b));
  EXPECT_TRUE(EvalCompare(b, CompareOp::kGt, a));
  EXPECT_TRUE(EvalCompare(b, CompareOp::kGe, a));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kNe, b));
  EXPECT_FALSE(EvalCompare(a, CompareOp::kEq, b));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kEq, Value::Int(3)));
  EXPECT_TRUE(EvalCompare(a, CompareOp::kGe, Value::Int(3)));
}

// Flip semantics: a op b == b flip(op) a over a numeric sweep.
class FlipPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FlipPropertyTest, FlipMirrorsOperands) {
  int i = GetParam();
  Value a = Value::Int(i % 7 - 3);
  Value b = Value::Int(i / 7 - 3);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_EQ(EvalCompare(a, op, b), EvalCompare(b, FlipCompareOp(op), a))
        << "a=" << a.ToText() << " b=" << b.ToText();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlipPropertyTest, ::testing::Range(0, 49));

}  // namespace
}  // namespace ufilter
