#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/prometheus.h"

namespace ufilter::obs {
namespace {

// --- bucket shape ---------------------------------------------------------

TEST(HistogramBucketsTest, BoundsStrictlyIncreasing) {
  for (size_t i = 1; i + 1 < kHistogramBuckets; ++i) {
    EXPECT_LT(HistogramBucketBound(i - 1), HistogramBucketBound(i)) << i;
  }
  EXPECT_EQ(HistogramBucketBound(0), 100u);
  // The covered range must comfortably hold a slow fsync (~tens of ms) and
  // a pathological full-second check before overflowing.
  EXPECT_GT(HistogramBucketBound(kHistogramBuckets - 2), 1000000000ull);
}

TEST(HistogramBucketsTest, BoundaryExactness) {
  // Bucket 0 is [0, 100); every later bucket i is [bound(i-1), bound(i)).
  EXPECT_EQ(HistogramBucketFor(0), 0u);
  EXPECT_EQ(HistogramBucketFor(99), 0u);
  EXPECT_EQ(HistogramBucketFor(100), 1u);
  for (size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    uint64_t bound = HistogramBucketBound(i);
    EXPECT_EQ(HistogramBucketFor(bound - 1), i) << "below bound " << bound;
    EXPECT_EQ(HistogramBucketFor(bound), i + 1) << "at bound " << bound;
  }
  EXPECT_EQ(HistogramBucketFor(UINT64_MAX), kHistogramBuckets - 1);
}

// --- recording and percentiles -------------------------------------------

TEST(HistogramTest, CountSumMaxExact) {
  Histogram h;
  h.Record(10);
  h.Record(250);
  h.Record(7000);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 7260u);
  EXPECT_EQ(s.max, 7000u);
  EXPECT_EQ(s.buckets[HistogramBucketFor(10)], 1u);
  EXPECT_EQ(s.buckets[HistogramBucketFor(250)], 1u);
  EXPECT_EQ(s.buckets[HistogramBucketFor(7000)], 1u);
}

TEST(HistogramTest, EmptyQuantilesAreZero) {
  HistogramSnapshot s;
  EXPECT_EQ(s.Percentile(50), 0u);
  EXPECT_EQ(s.Percentile(99), 0u);
  EXPECT_EQ(s.ValueAtQuantile(1.0), 0u);
}

// Percentile estimates vs. a sorted-sample oracle: the log-bucket design
// promises the estimate lands in the same bucket as the true rank sample,
// i.e. within one ~1.3x bucket ratio (bucket 0 spans [0,100) exactly).
TEST(HistogramTest, PercentileWithinOneBucketOfOracle) {
  Histogram h;
  std::vector<uint64_t> oracle;
  uint64_t v = 12345;
  for (int i = 0; i < 20000; ++i) {
    v = v * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t sample = v % 50000000;  // 0 .. 50ms in ns
    h.Record(sample);
    oracle.push_back(sample);
  }
  std::sort(oracle.begin(), oracle.end());
  HistogramSnapshot s = h.Snapshot();
  for (int p : {10, 50, 90, 99}) {
    double q = static_cast<double>(p) / 100.0;
    uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(oracle.size()));
    uint64_t truth = oracle[std::min(rank, oracle.size() - 1)];
    uint64_t est = s.Percentile(p);
    // The estimate interpolates inside the truth's bucket; a full-bucket
    // fraction can land exactly on the upper bound (one bucket up), so
    // allow at most one bucket of drift — i.e. within ~1.3x of the truth.
    long bucket_err =
        static_cast<long>(HistogramBucketFor(est)) -
        static_cast<long>(HistogramBucketFor(truth));
    EXPECT_LE(std::abs(bucket_err), 1)
        << "p" << p << " est=" << est << " truth=" << truth;
    EXPECT_LE(est, s.max);
  }
  // q >= 1 is the exact max, not an interpolation.
  EXPECT_EQ(s.ValueAtQuantile(1.0), s.max);
  EXPECT_EQ(s.Percentile(100), s.max);
}

TEST(HistogramTest, OverflowRankReturnsExactMax) {
  Histogram h;
  h.Record(1);
  h.Record(UINT64_MAX / 2);  // overflow bucket
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Percentile(99), UINT64_MAX / 2);
}

// --- merge algebra --------------------------------------------------------

HistogramSnapshot MakeSnap(std::initializer_list<uint64_t> values) {
  Histogram h;
  for (uint64_t v : values) h.Record(v);
  return h.Snapshot();
}

bool SnapEq(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  return a.buckets == b.buckets && a.count == b.count && a.sum == b.sum &&
         a.max == b.max;
}

TEST(HistogramTest, MergeAssociativeAndCommutative) {
  HistogramSnapshot a = MakeSnap({5, 120, 99000});
  HistogramSnapshot b = MakeSnap({77, 77, 4000000});
  HistogramSnapshot c = MakeSnap({1, 2500000000ull});

  HistogramSnapshot ab = a;
  ab.Merge(b);
  HistogramSnapshot ba = b;
  ba.Merge(a);
  EXPECT_TRUE(SnapEq(ab, ba));

  HistogramSnapshot ab_c = ab;
  ab_c.Merge(c);
  HistogramSnapshot bc = b;
  bc.Merge(c);
  HistogramSnapshot a_bc = a;
  a_bc.Merge(bc);
  EXPECT_TRUE(SnapEq(ab_c, a_bc));

  EXPECT_EQ(ab_c.count, 8u);
  EXPECT_EQ(ab_c.max, 2500000000ull);
  // Merging shards must equal recording everything into one histogram.
  HistogramSnapshot all =
      MakeSnap({5, 120, 99000, 77, 77, 4000000, 1, 2500000000ull});
  EXPECT_TRUE(SnapEq(ab_c, all));
}

// --- concurrency (meaningful under TSAN) ----------------------------------

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * 1000 + i % 997));
      }
    });
  }
  // Snapshot while writers run: must be race-free (values approximate).
  for (int i = 0; i < 100; ++i) {
    HistogramSnapshot s = h.Snapshot();
    EXPECT_LE(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  }
  for (auto& t : threads) t.join();
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(CounterTest, ConcurrentIncLosesNothing) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 50000; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), 200000u);
}

// --- registry -------------------------------------------------------------

TEST(RegistryTest, GetOrCreateReturnsStableIdentity) {
  Registry r;
  Counter* c1 = r.GetCounter("requests");
  Counter* c2 = r.GetCounter("requests");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1, c2);
  Histogram* h1 = r.GetHistogram("latency_ns");
  EXPECT_EQ(h1, r.GetHistogram("latency_ns"));
  Gauge* g = r.GetGauge("depth");
  ASSERT_NE(g, nullptr);
  // Kind mismatch on an existing name is a programming error -> nullptr.
  EXPECT_EQ(r.GetGauge("requests"), nullptr);
  EXPECT_EQ(r.GetCounter("latency_ns"), nullptr);
  EXPECT_EQ(r.GetHistogram("depth"), nullptr);
}

TEST(RegistryTest, CollectSortedWithCollectors) {
  Registry r;
  r.GetCounter("zeta")->Add(7);
  r.GetGauge("alpha")->Set(3);
  r.GetHistogram("mid_ns")->Record(150);
  r.AddCollector([](RegistrySnapshot* out) {
    MetricSample s;
    s.name = "collected_total";
    s.kind = MetricKind::kCounter;
    s.value = 42;
    out->push_back(std::move(s));
  });
  RegistrySnapshot snap = r.Collect();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end(),
                             [](const MetricSample& a, const MetricSample& b) {
                               return a.name < b.name;
                             }));
  const MetricSample* z = FindSample(snap, "zeta");
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->value, 7u);
  const MetricSample* col = FindSample(snap, "collected_total");
  ASSERT_NE(col, nullptr);
  EXPECT_EQ(col->value, 42u);
  const MetricSample* h = FindSample(snap, "mid_ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->hist.count, 1u);
  EXPECT_EQ(FindSample(snap, "missing"), nullptr);
}

// --- Prometheus exposition -------------------------------------------------

TEST(PrometheusTest, RendersCountersGaugesHistograms) {
  Registry r;
  r.GetCounter("reqs")->Add(5);
  r.GetGauge("depth")->Set(2);
  Histogram* h = r.GetHistogram("lat_ns");
  h->Record(50);    // bucket 0 (le="100")
  h->Record(120);   // bucket 1 (le="130")
  h->Record(UINT64_MAX / 2);  // overflow (+Inf only)
  std::string text = RenderPrometheus(r.Collect());

  EXPECT_NE(text.find("# TYPE ufilter_reqs counter\n"), std::string::npos);
  EXPECT_NE(text.find("ufilter_reqs 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ufilter_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("ufilter_depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ufilter_lat_ns histogram\n"), std::string::npos);
  // Cumulative buckets: 1 at le="100", 2 at le="130", and +Inf == count.
  EXPECT_NE(text.find("ufilter_lat_ns_bucket{le=\"100\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("ufilter_lat_ns_bucket{le=\"130\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("ufilter_lat_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("ufilter_lat_ns_count 3\n"), std::string::npos);
}

TEST(PrometheusTest, SkipsLeadingEmptyBucketsOnly) {
  Registry r;
  Histogram* h = r.GetHistogram("hi_ns");
  h->Record(200000);  // lands well past the first buckets
  std::string text = RenderPrometheus(r.Collect(), "");
  // No all-zero leading bucket lines...
  EXPECT_EQ(text.find("{le=\"100\"} 0"), std::string::npos);
  // ...but the first populated bucket and +Inf both carry the full count.
  size_t bucket = HistogramBucketFor(200000);
  char expect[64];
  std::snprintf(expect, sizeof(expect), "hi_ns_bucket{le=\"%llu\"} 1",
                static_cast<unsigned long long>(HistogramBucketBound(bucket)));
  EXPECT_NE(text.find(expect), std::string::npos);
  EXPECT_NE(text.find("hi_ns_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
}

}  // namespace
}  // namespace ufilter::obs
