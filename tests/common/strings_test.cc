#include "common/strings.h"

#include <gtest/gtest.h>

namespace ufilter {
namespace {

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("trailing,", ',').back(), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n x y \r"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("none"), "none");
}

TEST(StringsTest, ToLowerAndStartsWith) {
  EXPECT_EQ(ToLower("FoR WhErE"), "for where");
  EXPECT_TRUE(StartsWith("document(\"x\")", "document"));
  EXPECT_FALSE(StartsWith("doc", "document"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

}  // namespace
}  // namespace ufilter
