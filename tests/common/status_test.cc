#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace ufilter {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::DataConflict("key exists");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsDataConflict());
  EXPECT_EQ(s.message(), "key exists");
  EXPECT_EQ(s.ToString(), "DataConflict: key exists");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::NotFound("no table 'x'").WithContext("step 3");
  EXPECT_EQ(s.message(), "step 3: no table 'x'");
  EXPECT_TRUE(Status::OK().WithContext("ctx").ok());
}

TEST(StatusTest, AllCodePredicates) {
  EXPECT_TRUE(Status::ParseError("").IsParseError());
  EXPECT_TRUE(Status::ConstraintViolation("").IsConstraintViolation());
  EXPECT_TRUE(Status::InvalidUpdate("").IsInvalidUpdate());
  EXPECT_TRUE(Status::Untranslatable("").IsUntranslatable());
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("").IsNotSupported());
  EXPECT_TRUE(Status::Internal("").IsInternal());
}

Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  UFILTER_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Propagates().IsInternal());
}

Result<int> GiveInt(bool ok) {
  if (!ok) return Status::NotFound("nope");
  return 41;
}

Result<int> UseAssign(bool ok) {
  UFILTER_ASSIGN_OR_RETURN(int v, GiveInt(ok));
  return v + 1;
}

TEST(ResultTest, ValueAndError) {
  auto good = UseAssign(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  auto bad = UseAssign(false);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(GiveInt(false).ValueOr(7), 7);
  EXPECT_EQ(GiveInt(true).ValueOr(7), 41);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace ufilter
