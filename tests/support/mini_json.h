// A tiny recursive-descent JSON parser for tests that validate JSON our
// code *emits* (Chrome trace exports, slow-check log lines). Test-only on
// purpose: strict enough to reject malformed output (unbalanced structure,
// bad escapes, trailing garbage), small enough to read in one sitting.
// Numbers are kept as double (all values we emit fit exactly: span
// timestamps are µs with 3 decimals, everything else is an integer well
// under 2^53).
#ifndef UFILTER_TESTS_SUPPORT_MINI_JSON_H_
#define UFILTER_TESTS_SUPPORT_MINI_JSON_H_

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ufilter::test_support {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0;
  /// Exact value when the token was a plain unsigned integer (no '.', no
  /// exponent, no sign) — doubles lose integers past 2^53, and 64-bit
  /// hashes don't fit. is_u64 marks it valid.
  uint64_t u64 = 0;
  bool is_u64 = false;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

/// Parses strict JSON. Returns false (and fills *error) on any syntax
/// problem, including trailing non-whitespace after the document.
class MiniJsonParser {
 public:
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error = nullptr) {
    MiniJsonParser p(text);
    if (!p.ParseValue(out)) {
      if (error != nullptr) *error = p.error_;
      return false;
    }
    p.SkipWs();
    if (p.pos_ != text.size()) {
      if (error != nullptr) *error = "trailing garbage";
      return false;
    }
    return true;
  }

 private:
  explicit MiniJsonParser(const std::string& text) : text_(text) {}

  bool Fail(const char* what) {
    error_ = std::string(what) + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case 't':
        if (text_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          out->type = JsonValue::Type::kBool;
          out->b = true;
          return true;
        }
        return Fail("bad literal");
      case 'f':
        if (text_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          out->type = JsonValue::Type::kBool;
          out->b = false;
          return true;
        }
        return Fail("bad literal");
      case 'n':
        if (text_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          out->type = JsonValue::Type::kNull;
          return true;
        }
        return Fail("bad literal");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->obj[key] = std::move(v);
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->arr.push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return Fail("raw control char");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("dangling escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Tests only emit ASCII escapes; store BMP points as UTF-8.
          if (v < 0x80) {
            out->push_back(static_cast<char>(v));
          } else if (v < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (v >> 6)));
            out->push_back(static_cast<char>(0x80 | (v & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (v >> 12)));
            out->push_back(static_cast<char>(0x80 | ((v >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (v & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    char* end = nullptr;
    std::string tok = text_.substr(start, pos_ - start);
    out->num = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    out->type = JsonValue::Type::kNumber;
    if (tok.find_first_not_of("0123456789") == std::string::npos) {
      out->u64 = std::strtoull(tok.c_str(), nullptr, 10);
      out->is_u64 = true;
    }
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace ufilter::test_support

#endif  // UFILTER_TESTS_SUPPORT_MINI_JSON_H_
