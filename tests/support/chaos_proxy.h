// Socket-level fault-injection proxy for the tests/net/ chaos suite.
//
// The proxy relays 127.0.0.1:<port()> <-> 127.0.0.1:<target_port> byte
// streams and, on command, misbehaves exactly the way a sick network does:
//
//   - SetDelayMs(d)       every forwarded chunk sleeps d first (both
//                         directions) — latency injection;
//   - CorruptNext()       flips one bit of the next client->server chunk
//                         (the CRC must catch it and the server must drop
//                         only that connection);
//   - TruncateAfter(n)    forwards exactly n more client->server bytes,
//                         then severs the connection — lets a test tear a
//                         frame mid-length-prefix;
//   - Blackhole(on)       swallows client->server bytes without
//                         forwarding (the client must hit its deadline,
//                         never hang);
//   - SeverAll()          resets every proxied connection right now.
//
// Faults are armed from the test thread via atomics; the pump threads
// observe them per-chunk. One pump thread per direction per connection,
// with 50ms poll ticks so shutdown is never blocked on a quiet socket.
#ifndef UFILTER_TESTS_SUPPORT_CHAOS_PROXY_H_
#define UFILTER_TESTS_SUPPORT_CHAOS_PROXY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "net/socket.h"

namespace ufilter::testing {

class ChaosProxy {
 public:
  /// Listens on an ephemeral port relaying to 127.0.0.1:target_port.
  /// Aborts the test process on listen failure (test-only code).
  explicit ChaosProxy(uint16_t target_port) : target_port_(target_port) {
    auto listen = net::ListenTcp(0);
    if (!listen.ok()) std::abort();
    listen_fd_ = *listen;
    auto port = net::LocalPort(listen_fd_);
    if (!port.ok()) std::abort();
    port_ = *port;
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }

  ~ChaosProxy() { Stop(); }

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  uint16_t port() const { return port_; }

  void SetDelayMs(int64_t ms) {
    delay_ms_.store(ms, std::memory_order_relaxed);
  }
  void CorruptNext() { corrupt_next_.store(true, std::memory_order_relaxed); }
  /// Forward exactly `n` more client->server bytes, then sever.
  void TruncateAfter(int64_t n) {
    truncate_remaining_.store(n, std::memory_order_relaxed);
  }
  void Blackhole(bool on) { blackhole_.store(on, std::memory_order_relaxed); }

  void SeverAll() {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->Sever();
  }

  uint64_t bytes_forwarded() const {
    return bytes_forwarded_.load(std::memory_order_relaxed);
  }

  /// Stops accepting and severs everything; joins all threads.
  void Stop() {
    bool expected = false;
    if (!stopped_.compare_exchange_strong(expected, true)) return;
    net::ShutdownFd(listen_fd_);
    accept_thread_.join();
    net::CloseFd(listen_fd_);
    SeverAll();
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->Join();
    conns_.clear();
  }

 private:
  struct Conn {
    int client_fd = -1;
    int upstream_fd = -1;
    std::atomic<bool> stop{false};
    std::thread c2s;
    std::thread s2c;

    void Sever() {
      stop.store(true, std::memory_order_relaxed);
      net::ShutdownFd(client_fd);
      net::ShutdownFd(upstream_fd);
    }
    void Join() {
      if (c2s.joinable()) c2s.join();
      if (s2c.joinable()) s2c.join();
      net::CloseFd(client_fd);
      net::CloseFd(upstream_fd);
    }
  };

  void AcceptLoop() {
    while (!stopped_.load(std::memory_order_relaxed)) {
      auto fd = net::AcceptWithTimeout(listen_fd_, 100);
      if (!fd.ok()) {
        if (fd.status().IsDeadlineExceeded()) continue;
        return;  // listener shut down
      }
      auto upstream = net::ConnectTcp("127.0.0.1", target_port_,
                                      std::chrono::milliseconds(1000));
      if (!upstream.ok()) {
        net::CloseFd(*fd);
        continue;
      }
      auto conn = std::make_unique<Conn>();
      conn->client_fd = *fd;
      conn->upstream_fd = *upstream;
      Conn* raw = conn.get();
      conn->c2s = std::thread([this, raw] {
        Pump(raw, raw->client_fd, raw->upstream_fd, /*client_to_server=*/true);
      });
      conn->s2c = std::thread([this, raw] {
        Pump(raw, raw->upstream_fd, raw->client_fd, /*client_to_server=*/false);
      });
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
  }

  void Pump(Conn* conn, int from, int to, bool client_to_server) {
    char buf[4096];
    while (!conn->stop.load(std::memory_order_relaxed) &&
           !stopped_.load(std::memory_order_relaxed)) {
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
      auto got = net::RecvSome(from, buf, sizeof(buf), deadline);
      if (!got.ok()) {
        if (got.status().IsDeadlineExceeded()) continue;  // idle tick
        break;  // peer gone
      }
      size_t n = *got;
      int64_t delay = delay_ms_.load(std::memory_order_relaxed);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
      // A blackhole is silent in both directions — requests vanish and so
      // do responses/heartbeats; only the peers' own deadlines can notice.
      if (blackhole_.load(std::memory_order_relaxed)) continue;
      if (client_to_server) {
        bool expected = true;
        if (corrupt_next_.compare_exchange_strong(expected, false)) {
          buf[0] ^= 0x40;
        }
        int64_t remaining = truncate_remaining_.load(std::memory_order_relaxed);
        if (remaining >= 0) {
          if (static_cast<int64_t>(n) >= remaining) {
            n = static_cast<size_t>(remaining);
            // One-shot: disarm so later connections relay normally.
            truncate_remaining_.store(-1, std::memory_order_relaxed);
            if (n > 0) {
              (void)net::SendAll(
                  to, buf, n,
                  std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(1000));
              bytes_forwarded_.fetch_add(n, std::memory_order_relaxed);
            }
            conn->Sever();
            break;
          }
          truncate_remaining_.store(remaining - static_cast<int64_t>(n),
                                    std::memory_order_relaxed);
        }
      }
      Status sent = net::SendAll(to, buf, n,
                                      std::chrono::steady_clock::now() +
                                          std::chrono::milliseconds(2000));
      if (!sent.ok()) break;
      bytes_forwarded_.fetch_add(n, std::memory_order_relaxed);
    }
    // One dead direction kills the whole proxied connection: half-open
    // relays only hide bugs the real network would expose.
    conn->Sever();
  }

  uint16_t target_port_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopped_{false};

  std::atomic<int64_t> delay_ms_{0};
  std::atomic<bool> corrupt_next_{false};
  std::atomic<int64_t> truncate_remaining_{-1};
  std::atomic<bool> blackhole_{false};
  std::atomic<uint64_t> bytes_forwarded_{0};

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace ufilter::testing

#endif  // UFILTER_TESTS_SUPPORT_CHAOS_PROXY_H_
