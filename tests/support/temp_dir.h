// Shared RAII temp-directory helper for every test/bench that touches the
// filesystem (WAL files, checkpoints). All database files must go through
// this — it guarantees unique paths under concurrent ctest -j and cleans up
// even when assertions fail, so no run leaves stray files for the next.
#ifndef UFILTER_TESTS_SUPPORT_TEMP_DIR_H_
#define UFILTER_TESTS_SUPPORT_TEMP_DIR_H_

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <system_error>

namespace ufilter::test_support {

/// mkdtemp-backed scratch directory, recursively removed on destruction.
class TempDir {
 public:
  explicit TempDir(const char* prefix = "ufilter") {
    std::error_code ec;
    std::filesystem::path base =
        std::filesystem::temp_directory_path(ec);
    if (ec) base = "/tmp";
    std::string tmpl =
        (base / (std::string(prefix) + ".XXXXXX")).string();
    if (::mkdtemp(tmpl.data()) != nullptr) {
      dir_ = tmpl;
    } else {
      std::perror("TempDir: mkdtemp");
    }
  }

  ~TempDir() {
    if (!dir_.empty()) {
      std::error_code ec;  // best-effort: never throw from a dtor
      std::filesystem::remove_all(dir_, ec);
    }
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  /// False when mkdtemp failed; path() then points at an empty string.
  bool ok() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }
  /// Absolute path for a file named `name` inside the directory.
  std::string path(const std::string& name) const {
    return dir_ + "/" + name;
  }

 private:
  std::string dir_;
};

}  // namespace ufilter::test_support

#endif  // UFILTER_TESTS_SUPPORT_TEMP_DIR_H_
