// Shared seed plumbing for the randomized (fuzz-style) test suites.
//
// Every fuzz test derives its RNG seed through FuzzSeed(label, default):
// the UFILTER_FUZZ_SEED environment variable overrides the default, and the
// chosen seed is always logged, so a CI failure is reproducible locally
// with e.g.
//
//   UFILTER_FUZZ_SEED=12345 ctest -R integration/differential
#ifndef UFILTER_TESTS_SUPPORT_FUZZ_SEED_H_
#define UFILTER_TESTS_SUPPORT_FUZZ_SEED_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace ufilter::test_support {

/// The seed for the fuzzer named `label`: UFILTER_FUZZ_SEED when set (all
/// fuzzers of a test binary then share it), else `default_seed`. Logged to
/// stderr either way so the failing run's seed is always in the CI output.
inline uint32_t FuzzSeed(const char* label, uint32_t default_seed) {
  uint32_t seed = default_seed;
  const char* env = std::getenv("UFILTER_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    seed = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  std::fprintf(stderr,
               "[fuzz] %s: seed = %u (override with UFILTER_FUZZ_SEED)\n",
               label, seed);
  return seed;
}

}  // namespace ufilter::test_support

#endif  // UFILTER_TESTS_SUPPORT_FUZZ_SEED_H_
