// Replication cost, both halves of the epoch stream:
//
//   ReplicationApplyThroughput   the follower's apply path in isolation —
//                                WalTailer::Poll + ApplyReplicatedEpoch
//                                over a pre-committed log; items/sec is
//                                records (epochs) applied, with the shipped
//                                byte volume attached;
//   ReplicationConvergence       end-to-end over real sockets — a primary
//                                with a ReplicationSource, a live Follower
//                                subscribed to it; each iteration commits
//                                one writer batch and waits until the
//                                follower has applied it, so items/sec is
//                                converged epochs per second (commit +
//                                ship + apply + publish).
//
// The CI gate requires both series in BENCH_replication.json; the steady
// state it certifies is replication_lag_epochs == 0 after each iteration.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "../tests/support/temp_dir.h"
#include "fixtures/synthetic.h"
#include "net/replication.h"
#include "net/server.h"
#include "relational/database.h"
#include "relational/wal.h"

namespace {

using ufilter::check::UFilter;
using ufilter::net::Follower;
using ufilter::net::FollowerOptions;
using ufilter::net::ReplicationSource;
using ufilter::net::ReplicationSourceOptions;
using ufilter::net::Server;
using ufilter::relational::Database;
using ufilter::relational::DurabilityOptions;
using ufilter::relational::FsyncPolicy;
using ufilter::relational::WalTailer;

constexpr int kDepth = 2;
constexpr int kRows = 32;
constexpr uint64_t kNoCap = 64ull << 20;

void Die(const char* what, const ufilter::Status& st) {
  std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
  std::abort();
}

std::unique_ptr<Database> MakeDurablePrimary(const std::string& wal,
                                             int batches) {
  auto db = Database::Create(ufilter::fixtures::MakeChainSchema(kDepth));
  if (!db.ok()) Die("create", db.status());
  DurabilityOptions opts;
  opts.wal_path = wal;
  opts.fsync_policy = FsyncPolicy::kGroup;
  opts.group_commit_size = 8;
  if (auto st = (*db)->EnableDurability(opts); !st.ok()) Die("wal", st);
  if (auto st = ufilter::fixtures::PopulateChain(db->get(), kDepth, kRows);
      !st.ok()) {
    Die("populate", st);
  }
  for (int b = 0; b < batches; ++b) {
    if (auto st = ufilter::fixtures::ApplyChainBatch(db->get(), kDepth, kRows,
                                                     /*seed=*/17, b);
        !st.ok()) {
      Die("batch", st);
    }
  }
  if (auto st = (*db)->SyncWal(); !st.ok()) Die("sync", st);
  return std::move(*db);
}

void ReplicationApplyThroughput(benchmark::State& state) {
  const int batches = static_cast<int>(state.range(0));
  ufilter::test_support::TempDir tmp("bench_repl_apply");
  if (!tmp.ok()) std::abort();
  const std::string wal = tmp.path("primary.wal");
  auto primary = MakeDurablePrimary(wal, batches);

  int64_t records = 0;
  int64_t bytes = 0;
  for (auto _ : state) {
    // A fresh follower per iteration: the whole certified history is the
    // stream being applied.
    state.PauseTiming();
    auto follower =
        Database::Create(ufilter::fixtures::MakeChainSchema(kDepth));
    if (!follower.ok()) Die("follower", follower.status());
    WalTailer tailer(wal);
    state.ResumeTiming();

    while (true) {
      auto polled = tailer.Poll(kNoCap);
      if (!polled.ok()) Die("poll", polled.status());
      if (polled->empty()) break;
      for (const auto& tailed : *polled) {
        auto record = ufilter::relational::DecodeWalPayload(tailed.payload);
        if (!record.ok()) Die("decode", record.status());
        if (auto st = (*follower)->ApplyReplicatedEpoch(*record); !st.ok()) {
          Die("apply", st);
        }
        ++records;
        bytes += static_cast<int64_t>(tailed.payload.size());
      }
    }
    if ((*follower)->commit_epoch() != primary->commit_epoch()) {
      std::fprintf(stderr, "follower stopped short of the primary\n");
      std::abort();
    }
  }
  state.SetItemsProcessed(records);
  state.SetBytesProcessed(bytes);
  const auto avg = benchmark::Counter::kAvgIterations;
  state.counters["records_per_iter"] =
      benchmark::Counter(static_cast<double>(records), avg);
}
BENCHMARK(ReplicationApplyThroughput)
    ->Arg(16)
    ->Arg(64)
    ->ArgName("epochs")
    ->Unit(benchmark::kMillisecond);

void ReplicationConvergence(benchmark::State& state) {
  ufilter::test_support::TempDir tmp("bench_repl_live");
  if (!tmp.ok()) std::abort();
  const std::string wal = tmp.path("primary.wal");
  auto primary = MakeDurablePrimary(wal, /*batches=*/0);
  if (auto st = primary->PublishVersion(); st.status().ok() == false) {
    Die("publish", st.status());
  }
  auto primary_uf =
      UFilter::Create(primary.get(), ufilter::fixtures::ChainViewQuery(kDepth));
  if (!primary_uf.ok()) Die("ufilter", primary_uf.status());
  auto primary_server = Server::Start(primary_uf->get());
  if (!primary_server.ok()) Die("server", primary_server.status());

  ReplicationSourceOptions ropts;
  ropts.wal_path = wal;
  ropts.poll_interval = std::chrono::milliseconds(1);
  auto source = ReplicationSource::Start(
      primary.get(), &(*primary_server)->service().registry(), ropts);
  if (!source.ok()) Die("source", source.status());

  auto follower_db =
      Database::Create(ufilter::fixtures::MakeChainSchema(kDepth));
  if (!follower_db.ok()) Die("follower db", follower_db.status());
  auto follower_uf = UFilter::Create(follower_db->get(),
                                     ufilter::fixtures::ChainViewQuery(kDepth));
  if (!follower_uf.ok()) Die("follower uf", follower_uf.status());
  auto follower_server = Server::Start(follower_uf->get());
  if (!follower_server.ok()) Die("follower server", follower_server.status());
  FollowerOptions fopts;
  fopts.port = (*source)->port();
  auto follower = Follower::Start(&(*follower_server)->service(),
                                  follower_db->get(), fopts);

  int batch = 1000;  // distinct from the setup batches
  int64_t epochs = 0;
  for (auto _ : state) {
    if (auto st = ufilter::fixtures::ApplyChainBatch(
            primary.get(), kDepth, kRows, /*seed=*/17, batch++);
        !st.ok()) {
      Die("commit", st);
    }
    if (!follower->WaitForEpoch(primary->commit_epoch(),
                                std::chrono::seconds(30))) {
      std::fprintf(stderr, "convergence stalled: %s\n",
                   follower->status().ToString().c_str());
      std::abort();
    }
    ++epochs;
  }
  state.SetItemsProcessed(epochs);
  auto stats = follower->stats();
  const auto avg = benchmark::Counter::kAvgIterations;
  state.counters["records_applied_per_iter"] =
      benchmark::Counter(static_cast<double>(stats.records_applied), avg);
  state.counters["bytes_applied_per_iter"] =
      benchmark::Counter(static_cast<double>(stats.bytes_applied), avg);
  state.counters["lag_epochs_final"] =
      benchmark::Counter(static_cast<double>(stats.lag_epochs));
  follower->Stop();
  (*source)->Stop();
}
BENCHMARK(ReplicationConvergence)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return ufilter::bench::RunWithJson(argc, argv, "replication");
}
