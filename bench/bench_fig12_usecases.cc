// Fig. 12: expressiveness of the view ASG over the W3C XML Query Use Cases.
// Prints the paper's table, then micro-benchmarks the classifier itself.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>

#include "ufilter/usecases.h"

namespace {

void BM_ClassifyAllUseCases(benchmark::State& state) {
  for (auto _ : state) {
    auto verdicts = ufilter::check::EvaluateUseCases();
    benchmark::DoNotOptimize(verdicts);
  }
  state.counters["queries"] = static_cast<double>(
      ufilter::check::UseCaseCatalog().size());
}
BENCHMARK(BM_ClassifyAllUseCases);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Fig. 12: Evaluation of W3C Use Cases ===\n%s\n",
              ufilter::check::UseCaseTable().c_str());
  int included = 0, total = 0;
  for (const auto& v : ufilter::check::EvaluateUseCases()) {
    ++total;
    if (v.included) ++included;
  }
  std::printf("included: %d / %d (paper: 16 / 36)\n\n", included, total);

  return ufilter::bench::RunWithJson(argc, argv, "fig12_usecases");
}
