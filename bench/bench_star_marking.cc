// Section 7.2 (text): cost of the static STAR *marking* procedure.
// The paper reports 0.12 s for Vsuccess and 0.15 s for Vfail on 2005
// hardware; the claim to reproduce is that marking stays cheap and
// independent of the database size (it is schema-only).
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <memory>

#include "asg/view_asg.h"
#include "fixtures/bookdb.h"
#include "fixtures/tpch_views.h"
#include "relational/tpch.h"
#include "ufilter/star.h"
#include "view/analyzed_view.h"
#include "xquery/parser.h"

namespace {

using ufilter::asg::BaseAsg;
using ufilter::asg::ViewAsg;
using ufilter::view::AnalyzedView;

struct Compiled {
  std::unique_ptr<ufilter::relational::Database> db;
  ufilter::xq::ViewQuery query;
  std::unique_ptr<AnalyzedView> view;
  std::unique_ptr<ViewAsg> gv;
  BaseAsg gd;
};

std::unique_ptr<Compiled> CompileTpch(const std::string& text, double scale) {
  auto out = std::make_unique<Compiled>();
  ufilter::relational::tpch::TpchOptions options;
  options.scale = scale;
  auto db = ufilter::relational::tpch::MakeDatabase(options);
  if (!db.ok()) return nullptr;
  out->db = std::move(*db);
  auto q = ufilter::xq::ParseViewQuery(text);
  if (!q.ok()) return nullptr;
  out->query = std::move(*q);
  auto v = AnalyzedView::Analyze(out->query, &out->db->schema());
  if (!v.ok()) return nullptr;
  out->view = std::move(*v);
  auto gv = ViewAsg::Build(*out->view);
  if (!gv.ok()) return nullptr;
  out->gv = std::move(*gv);
  out->gd = BaseAsg::Build(*out->view);
  return out;
}

void BM_MarkVsuccess(benchmark::State& state) {
  // The marking procedure is schema-level: the scale parameter only proves
  // its cost does not move with the data size.
  double scale = static_cast<double>(state.range(0)) / 10.0;
  auto compiled = CompileTpch(ufilter::fixtures::VSuccessQuery(), scale);
  if (compiled == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto st = ufilter::check::MarkViewAsg(compiled->gv.get(), compiled->gd);
    benchmark::DoNotOptimize(st);
  }
  state.counters["db_rows"] = static_cast<double>(compiled->db->TotalRows());
}
BENCHMARK(BM_MarkVsuccess)->Arg(1)->Arg(5)->Arg(10);

void BM_MarkVfail(benchmark::State& state) {
  auto compiled =
      CompileTpch(ufilter::fixtures::VFailQuery("region"), 0.5);
  if (compiled == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto st = ufilter::check::MarkViewAsg(compiled->gv.get(), compiled->gd);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_MarkVfail);

void BM_FullViewCompilation(benchmark::State& state) {
  // Parse + analyze + both ASGs + marking (what UFilter::Create does),
  // measured end to end for the BookView.
  auto db = ufilter::fixtures::MakeBookDatabase();
  if (!db.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto q = ufilter::xq::ParseViewQuery(ufilter::fixtures::BookViewQuery());
    auto v = AnalyzedView::Analyze(*q, &(*db)->schema());
    auto gv = ViewAsg::Build(**v);
    BaseAsg gd = BaseAsg::Build(**v);
    auto st = ufilter::check::MarkViewAsg(gv->get(), gd);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_FullViewCompilation);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== STAR marking cost (Section 7.2) ===\n"
      "Paper: 0.12 s (Vsuccess) / 0.15 s (Vfail) on 2005 hardware; the\n"
      "reproduced claim is schema-only cost, flat across database sizes.\n\n");
  return ufilter::bench::RunWithJson(argc, argv, "star_marking");
}
