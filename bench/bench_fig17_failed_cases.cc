// Fig. 17: hybrid vs. outside over Vlinear in the *failed* cases.
//
//   Fail1: nothing qualifies at all (the deleted customer does not exist):
//          hybrid still runs every per-relation delete query against the
//          base tables ("zero tuples deleted" warnings); outside detects
//          the empty context probe immediately and issues nothing.
//   Fail2: the customer and its orders exist (and are deleted) but there
//          are no qualifying lineitems: hybrid runs the useless lineitem
//          statement anyway; outside probes it first and skips it.
//
// The paper's shape: outside below hybrid in both failed cases, with the
// Fail1 gap larger (everything is skipped, not just one statement).
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <map>
#include <memory>

#include "fixtures/tpch_views.h"
#include "relational/query.h"
#include "relational/tpch.h"

namespace {

using ufilter::CompareOp;
using ufilter::Value;
using ufilter::relational::ColRef;
using ufilter::relational::Database;
using ufilter::relational::QueryEvaluator;
using ufilter::relational::SelectQuery;

struct Instance {
  std::unique_ptr<Database> db;
  int64_t fail2_custkey = 0;  ///< customer whose orders have no lineitems
};

Instance& InstanceFor(int scale_tenths) {
  static std::map<int, std::unique_ptr<Instance>> instances;
  auto& slot = instances[scale_tenths];
  if (slot == nullptr) {
    slot = std::make_unique<Instance>();
    ufilter::relational::tpch::TpchOptions options;
    options.scale = static_cast<double>(scale_tenths) / 10.0;
    auto db = ufilter::relational::tpch::MakeDatabase(options);
    if (db.ok()) slot->db = std::move(*db);
    // Fail2 setup: strip the lineitems of customer 1's orders.
    slot->fail2_custkey = 1;
    auto orders = (*slot->db->GetTable("orders"))
                      ->Find({{"o_custkey", CompareOp::kEq, Value::Int(1)}},
                             nullptr);
    for (auto order_id : orders) {
      const auto* row = (*slot->db->GetTable("orders"))->GetRow(order_id);
      (void)slot->db->DeleteWhere(
          "lineitem", {{"l_orderkey", CompareOp::kEq, (*row)[0]}});
    }
    slot->db->Checkpoint();
  }
  return *slot;
}

/// The per-relation delete statements of the translated update: delete the
/// customer element = delete from lineitem, orders, customer (bottom-up,
/// like the decomposed external translation).
struct Statements {
  SelectQuery lineitem, orders, customer;
};

Statements MakeStatements(int64_t custkey) {
  Statements s;
  s.customer.tables = {{"customer", "c"}};
  s.customer.selects = {ColRef{"c", "c_custkey"}};
  s.customer.filters = {{ColRef{"c", "c_custkey"}, CompareOp::kEq,
                         Value::Int(custkey)}};
  s.orders.tables = {{"customer", "c"}, {"orders", "o"}};
  s.orders.selects = {ColRef{"o", "o_orderkey"}};
  s.orders.joins = {{ColRef{"o", "o_custkey"}, CompareOp::kEq,
                     ColRef{"c", "c_custkey"}}};
  s.orders.filters = s.customer.filters;
  s.lineitem.tables = {{"customer", "c"}, {"orders", "o"}, {"lineitem", "l"}};
  s.lineitem.selects = {ColRef{"l", "l_orderkey"},
                        ColRef{"l", "l_linenumber"}};
  s.lineitem.joins = {{ColRef{"o", "o_custkey"}, CompareOp::kEq,
                       ColRef{"c", "c_custkey"}},
                      {ColRef{"l", "l_orderkey"}, CompareOp::kEq,
                       ColRef{"o", "o_orderkey"}}};
  s.lineitem.filters = s.customer.filters;
  return s;
}

/// Executes "DELETE FROM <table> WHERE key IN (<probe>)" the hybrid way:
/// run the probe against the indexed base tables, then delete by key.
int64_t ProbeAndDelete(Database* db, const SelectQuery& probe,
                       const std::string& table) {
  QueryEvaluator evaluator(db);
  auto rows = evaluator.Execute(probe);
  if (!rows.ok()) return 0;
  int64_t deleted = 0;
  // Delete via the returned row ids of the *last* FROM entry.
  size_t pos = probe.tables.size() - 1;
  for (const auto& ids : rows->row_ids) {
    auto outcome = db->DeleteRow(table, ids[pos]);
    if (outcome.ok()) deleted += outcome->deleted_rows;
  }
  return deleted;
}

void RunHybrid(benchmark::State& state, bool fail1) {
  Instance& inst = InstanceFor(static_cast<int>(state.range(0)));
  Database* db = inst.db.get();
  int64_t custkey = fail1 ? 99999999 : inst.fail2_custkey;
  Statements stmts = MakeStatements(custkey);
  for (auto _ : state) {
    size_t savepoint = db->Begin();
    // Hybrid: every statement is sent to the engine; empty ones come back
    // as "zero tuples deleted" warnings after doing their probe work.
    int64_t n = 0;
    n += ProbeAndDelete(db, stmts.lineitem, "lineitem");
    n += ProbeAndDelete(db, stmts.orders, "orders");
    n += ProbeAndDelete(db, stmts.customer, "customer");
    benchmark::DoNotOptimize(n);
    db->Rollback(savepoint);
  }
  state.counters["db_rows"] = static_cast<double>(db->TotalRows());
}

void RunOutside(benchmark::State& state, bool fail1) {
  Instance& inst = InstanceFor(static_cast<int>(state.range(0)));
  Database* db = inst.db.get();
  int64_t custkey = fail1 ? 99999999 : inst.fail2_custkey;
  Statements stmts = MakeStatements(custkey);
  QueryEvaluator evaluator(db);
  for (auto _ : state) {
    size_t savepoint = db->Begin();
    // Outside: probe first, materialize intermediate results and reuse them
    // (the paper's TAB_book / PQ4 pattern). An empty *context* probe
    // (Fail1) aborts the whole update without issuing anything.
    auto context = evaluator.Execute(stmts.customer);
    if (context.ok() && !context->empty()) {
      int64_t n = 0;
      // Materialize the qualified order keys once; both the lineitem probe
      // and the orders delete reuse them.
      (void)evaluator.MaterializeInto(stmts.orders, "TAB_orders");
      auto* tab = *db->GetTable("TAB_orders");
      // PQ4-style probe: lineitems whose l_orderkey is IN TAB_orders.
      SelectQuery pq4;
      pq4.tables = {{"TAB_orders", "t"}, {"lineitem", "l"}};
      pq4.selects = {ColRef{"l", "l_orderkey"}};
      pq4.joins = {{ColRef{"l", "l_orderkey"}, CompareOp::kEq,
                    ColRef{"t", "o_orderkey"}}};
      auto lineitems = evaluator.Execute(pq4);
      if (lineitems.ok() && !lineitems->empty()) {
        // Delete the probed lineitems (never reached in Fail2).
        for (const auto& row : lineitems->rows) {
          auto outcome = db->DeleteWhere(
              "lineitem", {{"l_orderkey", CompareOp::kEq, row[0]}});
          if (outcome.ok()) n += outcome->deleted_rows;
        }
      }
      // Orders delete driven by the materialized keys (no re-join).
      for (auto id : tab->AllRowIds()) {
        const auto* row = tab->GetRow(id);
        auto outcome = db->DeleteWhere(
            "orders", {{"o_orderkey", CompareOp::kEq, (*row)[0]}});
        if (outcome.ok()) n += outcome->deleted_rows;
      }
      // Customer delete by the literal key.
      auto outcome = db->DeleteWhere(
          "customer", {{"c_custkey", CompareOp::kEq, Value::Int(custkey)}});
      if (outcome.ok()) n += outcome->deleted_rows;
      (void)db->DropTempTable("TAB_orders");
      benchmark::DoNotOptimize(n);
    }
    db->Rollback(savepoint);
  }
  state.counters["db_rows"] = static_cast<double>(db->TotalRows());
}

void BM_HybridFail1(benchmark::State& state) { RunHybrid(state, true); }
void BM_OutsideFail1(benchmark::State& state) { RunOutside(state, true); }
void BM_HybridFail2(benchmark::State& state) { RunHybrid(state, false); }
void BM_OutsideFail2(benchmark::State& state) { RunOutside(state, false); }

BENCHMARK(BM_HybridFail1)->DenseRange(2, 10, 2);
BENCHMARK(BM_OutsideFail1)->DenseRange(2, 10, 2);
BENCHMARK(BM_HybridFail2)->DenseRange(2, 10, 2);
BENCHMARK(BM_OutsideFail2)->DenseRange(2, 10, 2);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Fig. 17: hybrid vs. outside over Vlinear, failed cases ===\n"
      "Arg = scale/10. Expected shape: outside below hybrid for both Fail1\n"
      "(nothing qualifies) and Fail2 (no lineitems qualify).\n\n");
  return ufilter::bench::RunWithJson(argc, argv, "fig17_failed_cases");
}
