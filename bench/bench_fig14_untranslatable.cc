// Fig. 14: an *untranslatable* delete over Vfail (the target relation is
// republished under the root).
//
// Series "Update": the blind baseline — translate directly, execute the
// cascading delete, detect the side effect by materializing and diffing the
// view, roll everything back. Series "UpdateWithSTARChecking": U-Filter
// rejects at step 2 in constant time. The paper's shape: the blind cost is
// huge for REGION and shrinks down the chain; the STAR series is flat and
// tiny (~0.02 s on 2005 hardware).
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <map>
#include <memory>

#include "fixtures/tpch_views.h"
#include "relational/tpch.h"
#include "ufilter/blind.h"
#include "ufilter/checker.h"
#include "xquery/parser.h"

namespace {

using ufilter::check::CheckOptions;
using ufilter::check::CheckOutcome;
using ufilter::check::UFilter;

struct Setup {
  std::unique_ptr<ufilter::relational::Database> db;
  std::map<std::string, std::unique_ptr<UFilter>> views;  // per level
};

Setup& SharedSetup() {
  static Setup setup = [] {
    Setup s;
    ufilter::relational::tpch::TpchOptions options;
    options.scale = 2.0;
    auto db = ufilter::relational::tpch::MakeDatabase(options);
    if (db.ok()) s.db = std::move(*db);
    for (const char* rel :
         {"region", "nation", "customer", "orders", "lineitem"}) {
      auto uf =
          UFilter::Create(s.db.get(), ufilter::fixtures::VFailQuery(rel));
      if (uf.ok()) s.views[rel] = std::move(*uf);
    }
    return s;
  }();
  return setup;
}

const std::map<std::string, std::pair<std::string, int64_t>>& Levels() {
  // republished relation -> (victim element tag, key)
  static const std::map<std::string, std::pair<std::string, int64_t>> kMap = {
      {"region", {"region", 1}},
      {"nation", {"nation", 7}},
      {"customer", {"customer", 3}},
      {"orders", {"order", 11}},
      {"lineitem", {"lineitem", 2}},
  };
  return kMap;
}

void RunBlind(benchmark::State& state, const std::string& rel) {
  Setup& setup = SharedSetup();
  auto [tag, key] = Levels().at(rel);
  auto stmt = ufilter::xq::ParseUpdate(
      ufilter::fixtures::DeleteElementUpdate(tag, key));
  if (!stmt.ok()) {
    state.SkipWithError(stmt.status().ToString().c_str());
    return;
  }
  int64_t rows = 0;
  double detect = 0;
  for (auto _ : state) {
    auto result = ufilter::check::BlindExecute(setup.views[rel].get(), *stmt);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    if (!result->side_effect) {
      state.SkipWithError("blind baseline missed the side effect");
      return;
    }
    rows = result->rows_affected;
    detect = result->detect_seconds;
    // Manual time = translate + execute + rollback, the phases the paper's
    // bars are dominated by. The side-effect detection (two full view
    // materializations + diff) is reported as a counter: our in-memory
    // materializer costs the same at every level and would otherwise mask
    // the per-relation shape that Oracle's execution time produced.
    state.SetIterationTime(result->translate_seconds +
                           result->execute_seconds +
                           result->rollback_seconds);
  }
  state.counters["rows_rolled_back"] = static_cast<double>(rows);
  state.counters["detect_seconds"] = detect;
}

void RunStar(benchmark::State& state, const std::string& rel) {
  Setup& setup = SharedSetup();
  auto [tag, key] = Levels().at(rel);
  std::string update = ufilter::fixtures::DeleteElementUpdate(tag, key);
  // Per-update measurement: bypass the plan cache so the STAR reject cost
  // (parse + bind + validate + STAR) is paid every iteration, as in the
  // paper's per-request setting.
  CheckOptions options;
  options.use_plan_cache = false;
  for (auto _ : state) {
    auto report = setup.views[rel]->Check(update, options);
    if (report.outcome != CheckOutcome::kUntranslatable) {
      state.SkipWithError("expected untranslatable");
      return;
    }
    benchmark::DoNotOptimize(report);
  }
}

void RegisterAll() {
  for (const char* rel :
       {"region", "nation", "customer", "orders", "lineitem"}) {
    // Manual time accrues much slower than wall time here (the detection
    // phase is excluded); cap the measuring effort so a full-suite run
    // stays pleasant.
    benchmark::RegisterBenchmark(
        (std::string("Fig14/Update(blind+rollback)/") + rel).c_str(),
        [rel](benchmark::State& s) { RunBlind(s, rel); })
        ->UseManualTime()
        ->MinTime(0.05);
    benchmark::RegisterBenchmark(
        (std::string("Fig14/UpdateWithSTARChecking/") + rel).c_str(),
        [rel](benchmark::State& s) { RunStar(s, rel); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Fig. 14: untranslatable delete over Vfail ===\n"
      "Blind execute+detect+rollback vs. STAR early reject, per relation.\n"
      "Expected shape: blind cost falls Region >> ... >> Lineitem; the\n"
      "STAR series is flat and orders of magnitude cheaper.\n\n");
  RegisterAll();
  return ufilter::bench::RunWithJson(argc, argv, "fig14_untranslatable");
}
