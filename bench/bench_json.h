// Shared bench runner: every figure benchmark mirrors its results to a
// machine-readable BENCH_<name>.json in the working directory (Google
// Benchmark's native JSON schema) so the perf trajectory can accumulate
// across PRs. Passing an explicit --benchmark_out=... overrides the default.
#ifndef UFILTER_BENCH_BENCH_JSON_H_
#define UFILTER_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace ufilter::bench {

/// Runs all registered benchmarks. Unless the caller already passed a
/// --benchmark_out flag, results are also written as JSON to
/// `BENCH_<name>.json` in the current directory.
inline int RunWithJson(int argc, char** argv, const char* name) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Only an explicit output *file* disables the default; a bare
    // --benchmark_out_format does not (and is overridden below so that a
    // file named BENCH_*.json is always actually JSON).
    if (arg == "--benchmark_out" || arg.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = std::string("--benchmark_out=BENCH_") + name + ".json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ufilter::bench

#endif  // UFILTER_BENCH_BENCH_JSON_H_
