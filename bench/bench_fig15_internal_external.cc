// Fig. 15: internal vs. external strategy for inserting a new lineitem into
// Vlinear, swept over database size.
//
// The internal strategy (Section 6.2.1) maps the XML view to a flat
// relational view and must retrieve *all* attributes of all four upstream
// relations to build a complete relational-view tuple; the external
// strategy only fetches the key it needs (L_ORDERKEY). The paper's shape:
// internal sits consistently above external and the gap grows with DB size.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <map>
#include <memory>

#include "fixtures/tpch_views.h"
#include "relational/tpch.h"
#include "ufilter/checker.h"

namespace {

using ufilter::check::CheckOptions;
using ufilter::check::CheckOutcome;
using ufilter::check::DataCheckStrategy;
using ufilter::check::UFilter;

struct Instance {
  std::unique_ptr<ufilter::relational::Database> db;
  std::unique_ptr<UFilter> uf;
};

Instance& InstanceFor(int scale_tenths) {
  static std::map<int, Instance> instances;
  Instance& inst = instances[scale_tenths];
  if (inst.db == nullptr) {
    ufilter::relational::tpch::TpchOptions options;
    options.scale = static_cast<double>(scale_tenths) / 10.0;
    auto db = ufilter::relational::tpch::MakeDatabase(options);
    if (db.ok()) inst.db = std::move(*db);
    auto uf =
        UFilter::Create(inst.db.get(), ufilter::fixtures::VLinearQuery());
    if (uf.ok()) inst.uf = std::move(*uf);
  }
  return inst;
}

void RunInsert(benchmark::State& state, DataCheckStrategy strategy) {
  Instance& inst = InstanceFor(static_cast<int>(state.range(0)));
  if (inst.uf == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  std::string update = ufilter::fixtures::InsertLineitemUpdate(3, 99);
  CheckOptions options;
  options.apply = false;  // keep the key free for the next iteration
  options.strategy = strategy;
  // Per-update measurement: every iteration pays the full pipeline.
  options.use_plan_cache = false;
  for (auto _ : state) {
    auto report = inst.uf->Check(update, options);
    if (report.outcome != CheckOutcome::kExecuted) {
      state.SkipWithError(report.Describe().c_str());
      return;
    }
    benchmark::DoNotOptimize(report);
  }
  state.counters["db_rows"] = static_cast<double>(inst.db->TotalRows());
}

void BM_Internal(benchmark::State& state) {
  RunInsert(state, DataCheckStrategy::kInternal);
}
void BM_External(benchmark::State& state) {
  RunInsert(state, DataCheckStrategy::kHybrid);
}

BENCHMARK(BM_Internal)->DenseRange(2, 10, 2);
BENCHMARK(BM_External)->DenseRange(2, 10, 2);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Fig. 15: internal vs. external for a lineitem insert over "
      "Vlinear ===\n"
      "Arg = scale/10 (row counts in the db_rows counter). Expected shape:\n"
      "internal above external at every size.\n\n");
  return ufilter::bench::RunWithJson(argc, argv, "fig15_internal_external");
}
