// Observability overhead: the cached-check service path with the metrics
// layer off (BM_CachedCheck/0) vs. on (BM_CachedCheck/1). "On" is the
// production default — per-check latency histogram, per-stage histograms,
// queue-wait timestamps, and a TraceContext per request (stage totals
// always, full span capture only 1-in-64). "Off" never reads the clock on
// the check path: no TraceContext is created and no histogram is touched
// (plain counters stay on either way — one relaxed add each). The
// acceptance gate (compare_bench.py --pair, CI Release job) requires the
// "on" mean to stay within 3% of "off", i.e. mean(off)/mean(on) >= 0.97.
//
// BM_HistogramRecord / BM_HistogramSnapshot are the micro views: one
// Record is a branchless-ish upper_bound over 63 bounds plus three relaxed
// atomic adds (single-digit ns), and a 64-bucket snapshot+percentile is
// microseconds — nothing that can show up at check-path scale.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "fixtures/synthetic.h"
#include "obs/metrics.h"
#include "service/check_service.h"

namespace {

using ufilter::check::CheckOptions;
using ufilter::check::CheckOutcome;
using ufilter::check::CheckReport;
using ufilter::check::UFilter;
using ufilter::service::CheckService;
using ufilter::service::CheckServiceOptions;
using ufilter::service::Session;

constexpr int kDepth = 4;
constexpr int kRowsPerLevel = 200;
constexpr int kBatchSize = 64;
constexpr int kChecksPerIter = 256;

struct Setup {
  std::unique_ptr<ufilter::relational::Database> db;
  std::unique_ptr<UFilter> uf;
  std::vector<std::string> updates;
};

Setup& SharedSetup() {
  static Setup setup = [] {
    Setup s;
    auto db = ufilter::fixtures::MakeChainDatabase(kDepth, kRowsPerLevel);
    if (db.ok()) s.db = std::move(*db);
    auto uf = UFilter::Create(s.db.get(),
                              ufilter::fixtures::ChainViewQuery(kDepth));
    if (uf.ok()) s.uf = std::move(*uf);
    for (int k = 0; k < kBatchSize; ++k) {
      s.updates.push_back(ufilter::fixtures::ChainDeleteUpdate(kDepth - 1, k));
    }
    return s;
  }();
  return setup;
}

// The gated pair: identical cached check-only workload, metrics layer off
// (range 0) or on with production defaults (range 1).
void BM_CachedCheck(benchmark::State& state) {
  Setup& setup = SharedSetup();
  const bool metrics_on = state.range(0) != 0;
  CheckOptions dry;
  dry.apply = false;

  CheckServiceOptions options;
  options.worker_threads = 2;
  options.queue_capacity = kChecksPerIter;
  options.metrics_enabled = metrics_on;
  CheckService svc(setup.uf.get(), options);
  auto session = svc.OpenSession();

  // Warm the plan cache so the timed region is the pure cached path.
  for (const std::string& update : setup.updates) {
    (void)setup.uf->Prepare(update);
  }

  int64_t checked = 0;
  std::vector<std::future<CheckReport>> futures;
  futures.reserve(kChecksPerIter);
  for (auto _ : state) {
    futures.clear();
    for (int i = 0; i < kChecksPerIter; ++i) {
      futures.push_back(svc.Submit(
          session, setup.updates[static_cast<size_t>(i) % setup.updates.size()],
          dry));
    }
    for (auto& f : futures) {
      CheckReport r = f.get();
      if (r.outcome != CheckOutcome::kExecuted) {
        state.SkipWithError(r.Describe().c_str());
        return;
      }
      ++checked;
    }
  }
  state.SetItemsProcessed(checked);
  state.counters["metrics_enabled"] = metrics_on ? 1 : 0;
  if (metrics_on) {
    auto snap = svc.Snapshot();
    auto registry = svc.registry().Collect();
    const ufilter::obs::MetricSample* lat =
        ufilter::obs::FindSample(registry, "check_latency_ns");
    if (lat != nullptr) {
      state.counters["check_p50_ns"] =
          static_cast<double>(lat->hist.Percentile(50));
      state.counters["check_p99_ns"] =
          static_cast<double>(lat->hist.Percentile(99));
    }
    state.counters["queue_wait_p99_ns"] =
        static_cast<double>(snap.queue_wait_p99_ns);
    state.counters["traces_sampled"] =
        static_cast<double>(svc.tracer().sampled_count());
  }
}

// One histogram Record: bucket search + three relaxed atomic adds.
void BM_HistogramRecord(benchmark::State& state) {
  ufilter::obs::Histogram h;
  uint64_t v = 17;
  for (auto _ : state) {
    h.Record(v);
    v = v * 2862933555777941757ull + 3037000493ull;  // cheap LCG spread
    v &= (1ull << 30) - 1;
  }
  state.SetItemsProcessed(state.iterations());
  benchmark::DoNotOptimize(h.Snapshot().count);
}

// One snapshot + p99 over a populated 64-bucket histogram.
void BM_HistogramSnapshot(benchmark::State& state) {
  ufilter::obs::Histogram h;
  for (uint64_t i = 0; i < 100000; ++i) h.Record(i * 13 % 2000000);
  for (auto _ : state) {
    auto snap = h.Snapshot();
    benchmark::DoNotOptimize(snap.Percentile(99));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Observability overhead: metrics off vs. on ===\n"
      "Workload: %d cached leaf-delete templates over a depth-%d chain view\n"
      "(apply=false), %d checks per iteration, 2 workers. BM_CachedCheck/0\n"
      "runs with metrics_enabled=false (no clock reads on the check path);\n"
      "BM_CachedCheck/1 is the production default (latency + stage\n"
      "histograms, queue-wait timing, 1-in-64 trace sampling). The CI gate\n"
      "requires mean(/0)/mean(/1) >= 0.97, i.e. <3%% overhead.\n\n",
      kBatchSize, kDepth, kChecksPerIter);
  benchmark::RegisterBenchmark("BM_CachedCheck", BM_CachedCheck)
      ->Arg(0)
      ->Arg(1)
      ->UseRealTime()
      ->MeasureProcessCPUTime();
  benchmark::RegisterBenchmark("BM_HistogramRecord", BM_HistogramRecord);
  benchmark::RegisterBenchmark("BM_HistogramSnapshot", BM_HistogramSnapshot);
  return ufilter::bench::RunWithJson(argc, argv, "obs");
}
