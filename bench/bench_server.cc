// Multi-process load generator for the network front end: K forked client
// processes hammer an in-process Server over real TCP sockets.
//
//   ServerLoad/clients:K    healthy traffic — K clients x check-only
//                           requests; items/sec is end-to-end wire
//                           throughput (frame codec + socket round trip +
//                           service fast path).
//   ServerOverload          deliberate overload — one worker holding the
//                           writer lane against short-deadline applies
//                           from many clients; most requests must come
//                           back shed or deadline-expired, never hang.
//
// Counters are scraped over the wire via the kStatsRequest message (the
// same path operators use), so shed/deadline_expired/completed work is
// visible in BENCH_server.json: requests_per_iter, completed_per_iter,
// shed_per_iter, deadline_expired_per_iter, client_errors_per_iter. The
// CI gate requires both series and checks the JSON mirror exists.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fixtures/synthetic.h"
#include "net/client.h"
#include "net/server.h"

namespace {

using ufilter::check::UFilter;
using ufilter::net::Client;
using ufilter::net::ClientOptions;
using ufilter::net::Server;
using ufilter::net::ServerOptions;
using ufilter::net::StatsMsg;

constexpr int kDepth = 3;
constexpr int kRowsPerLevel = 64;

struct Rig {
  std::unique_ptr<ufilter::relational::Database> db;
  std::unique_ptr<UFilter> uf;
  std::unique_ptr<Server> server;
};

Rig MakeRig(ServerOptions opts) {
  Rig rig;
  auto db = ufilter::fixtures::MakeChainDatabase(kDepth, kRowsPerLevel);
  if (!db.ok()) {
    std::fprintf(stderr, "fixture: %s\n", db.status().ToString().c_str());
    std::abort();
  }
  rig.db = std::move(*db);
  auto uf = UFilter::Create(rig.db.get(),
                            ufilter::fixtures::ChainViewQuery(kDepth));
  if (!uf.ok()) {
    std::fprintf(stderr, "ufilter: %s\n", uf.status().ToString().c_str());
    std::abort();
  }
  rig.uf = std::move(*uf);
  auto server = Server::Start(rig.uf.get(), opts);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    std::abort();
  }
  rig.server = std::move(*server);
  return rig;
}

struct ClientTally {
  int ok = 0;
  int refused = 0;  // shed / draining / deadline — the server said no
  int errors = 0;   // transport or protocol failure
};

/// One forked client process: `requests` checks against the server, tally
/// written to `pipe_fd` as three integers. _exit so no benchmark/atexit
/// machinery runs in the child.
void RunClientProcess(int pipe_fd, uint16_t port, int requests, bool apply,
                      int timeout_ms) {
  ClientOptions opts;
  opts.port = port;
  opts.request_timeout = std::chrono::milliseconds(timeout_ms);
  opts.max_attempts = 1;  // the bench measures the server, not the backoff
  opts.jitter_seed = static_cast<uint32_t>(getpid());
  Client client(opts);
  ClientTally tally;
  const std::string update =
      ufilter::fixtures::ChainReplaceUpdate(1, 1, "bench");
  for (int i = 0; i < requests; ++i) {
    auto resp = client.Check(update, apply);
    if (resp.ok()) {
      ++tally.ok;
    } else if (resp.status().IsUnavailable() ||
               resp.status().IsDeadlineExceeded()) {
      ++tally.refused;
    } else {
      ++tally.errors;
    }
  }
  ::dprintf(pipe_fd, "%d %d %d\n", tally.ok, tally.refused, tally.errors);
  ::close(pipe_fd);
  ::_exit(0);
}

/// Forks `clients` processes and aggregates their tallies.
ClientTally RunStorm(uint16_t port, int clients, int requests_each,
                     bool apply, int timeout_ms) {
  std::vector<int> read_fds;
  std::vector<pid_t> pids;
  for (int c = 0; c < clients; ++c) {
    int fds[2];
    if (pipe(fds) != 0) std::abort();
    pid_t pid = fork();
    if (pid < 0) std::abort();
    if (pid == 0) {
      ::close(fds[0]);
      RunClientProcess(fds[1], port, requests_each, apply, timeout_ms);
    }
    ::close(fds[1]);
    read_fds.push_back(fds[0]);
    pids.push_back(pid);
  }
  ClientTally total;
  for (size_t c = 0; c < pids.size(); ++c) {
    char buf[64] = {0};
    ssize_t n = ::read(read_fds[c], buf, sizeof(buf) - 1);
    ::close(read_fds[c]);
    int wstatus = 0;
    ::waitpid(pids[c], &wstatus, 0);
    ClientTally one;
    if (n > 0 &&
        std::sscanf(buf, "%d %d %d", &one.ok, &one.refused, &one.errors) ==
            3) {
      total.ok += one.ok;
      total.refused += one.refused;
      total.errors += one.errors;
    } else {
      total.errors += requests_each;  // child died: count its whole share
    }
  }
  return total;
}

void AttachWireStats(benchmark::State& state, const Rig& rig,
                     const ClientTally& tally, int64_t requests) {
  ClientOptions opts;
  opts.port = rig.server->port();
  Client scraper(opts);
  auto stats = scraper.ServerStats();
  StatsMsg wire = stats.ok() ? *stats : StatsMsg{};
  const auto avg = benchmark::Counter::kAvgIterations;
  state.counters["requests_per_iter"] =
      benchmark::Counter(static_cast<double>(requests), avg);
  state.counters["completed_per_iter"] =
      benchmark::Counter(static_cast<double>(wire.completed), avg);
  state.counters["shed_per_iter"] =
      benchmark::Counter(static_cast<double>(wire.shed), avg);
  state.counters["deadline_expired_per_iter"] =
      benchmark::Counter(static_cast<double>(wire.deadline_expired), avg);
  state.counters["client_errors_per_iter"] =
      benchmark::Counter(static_cast<double>(tally.errors), avg);
}

void ServerLoad(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kRequestsEach = 32;
  ServerOptions opts;
  opts.service.worker_threads = 2;
  Rig rig = MakeRig(opts);

  ClientTally tally;
  int64_t requests = 0;
  for (auto _ : state) {
    ClientTally round = RunStorm(rig.server->port(), clients, kRequestsEach,
                                 /*apply=*/false, /*timeout_ms=*/5000);
    tally.ok += round.ok;
    tally.refused += round.refused;
    tally.errors += round.errors;
    requests += static_cast<int64_t>(clients) * kRequestsEach;
  }
  state.SetItemsProcessed(requests);
  AttachWireStats(state, rig, tally, requests);
  rig.server->Drain();
}
BENCHMARK(ServerLoad)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("clients")
    ->Unit(benchmark::kMillisecond);

void ServerOverload(benchmark::State& state) {
  // One worker that holds the writer lane 40ms per apply, a queue of one,
  // eight clients with 25ms budgets: almost everything must be refused —
  // shed at admission or purged at its deadline — and refusals must be
  // fast (this is the latency being measured).
  constexpr int kClients = 8;
  constexpr int kRequestsEach = 8;
  ServerOptions opts;
  opts.service.worker_threads = 1;
  opts.service.queue_capacity = 1;
  opts.service.writer_lane_hold_ms_for_testing = 40;
  Rig rig = MakeRig(opts);

  ClientTally tally;
  int64_t requests = 0;
  for (auto _ : state) {
    ClientTally round = RunStorm(rig.server->port(), kClients, kRequestsEach,
                                 /*apply=*/true, /*timeout_ms=*/25);
    tally.ok += round.ok;
    tally.refused += round.refused;
    tally.errors += round.errors;
    requests += static_cast<int64_t>(kClients) * kRequestsEach;
  }
  state.SetItemsProcessed(requests);
  AttachWireStats(state, rig, tally, requests);
  rig.server->Drain();
}
BENCHMARK(ServerOverload)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return ufilter::bench::RunWithJson(argc, argv, "server");
}
