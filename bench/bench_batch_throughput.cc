// Batch/cached throughput of the prepared-update architecture: updates/sec
// for the same delete workload through three paths —
//   - Cold:    every Check compiles from scratch (plan cache bypassed),
//   - Cached:  Check hits the plan cache (zero parse/bind/STAR per update),
//   - Batched: CheckBatch merges the step-3 anchor/victim probes of the
//              whole batch into OR-of-predicates queries.
// Expected shape: Cold < Cached < Batched, with probe-queries-per-update
// dropping from 2 (cold/cached) toward 2/batch_size (batched).
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fixtures/synthetic.h"
#include "ufilter/checker.h"

namespace {

using ufilter::check::CheckOptions;
using ufilter::check::CheckOutcome;
using ufilter::check::CheckReport;
using ufilter::check::UFilter;

constexpr int kDepth = 4;
constexpr int kRowsPerLevel = 200;
constexpr int kBatchSize = 64;

struct Setup {
  std::unique_ptr<ufilter::relational::Database> db;
  std::unique_ptr<UFilter> uf;
  std::vector<std::string> updates;  // kBatchSize distinct leaf deletes
};

Setup& SharedSetup() {
  static Setup setup = [] {
    Setup s;
    auto db = ufilter::fixtures::MakeChainDatabase(kDepth, kRowsPerLevel);
    if (db.ok()) s.db = std::move(*db);
    auto uf = UFilter::Create(s.db.get(),
                              ufilter::fixtures::ChainViewQuery(kDepth));
    if (uf.ok()) s.uf = std::move(*uf);
    for (int k = 0; k < kBatchSize; ++k) {
      s.updates.push_back(ufilter::fixtures::ChainDeleteUpdate(kDepth - 1, k));
    }
    return s;
  }();
  return setup;
}

void ReportCounters(benchmark::State& state, const Setup& setup,
                    int64_t updates_checked) {
  ufilter::relational::EngineStats stats = setup.db->SnapshotWorkCounters();
  if (updates_checked > 0) {
    state.counters["probe_queries_per_update"] =
        static_cast<double>(stats.queries_executed) /
        static_cast<double>(updates_checked);
  }
  state.counters["plan_cache_hits"] =
      static_cast<double>(stats.plan_cache_hits);
  state.counters["updates_compiled"] =
      static_cast<double>(stats.updates_compiled);
  ufilter::check::PlanCacheCounters cache = setup.uf->plan_cache().counters();
  state.counters["plan_cache_misses"] = static_cast<double>(cache.misses);
  state.counters["plan_cache_evictions"] =
      static_cast<double>(cache.evictions);
  state.SetItemsProcessed(updates_checked);
}

void BM_Cold(benchmark::State& state) {
  Setup& setup = SharedSetup();
  CheckOptions options;
  options.apply = false;
  options.use_plan_cache = false;
  // Scenario isolation: counters start at zero for this series.
  setup.db->ResetWorkCounters();
  setup.uf->plan_cache().ResetCounters();
  int64_t checked = 0;
  size_t next = 0;
  for (auto _ : state) {
    const std::string& update = setup.updates[next];
    next = (next + 1) % setup.updates.size();
    CheckReport r = setup.uf->Check(update, options);
    if (r.outcome != CheckOutcome::kExecuted) {
      state.SkipWithError(r.Describe().c_str());
      return;
    }
    ++checked;
    benchmark::DoNotOptimize(r);
  }
  ReportCounters(state, setup, checked);
}

void BM_Cached(benchmark::State& state) {
  Setup& setup = SharedSetup();
  CheckOptions options;
  options.apply = false;
  // Warm the plan cache outside the timed region.
  setup.uf->plan_cache().Clear();
  for (const std::string& update : setup.updates) {
    (void)setup.uf->Prepare(update);
  }
  setup.db->ResetWorkCounters();
  setup.uf->plan_cache().ResetCounters();
  int64_t checked = 0;
  size_t next = 0;
  for (auto _ : state) {
    const std::string& update = setup.updates[next];
    next = (next + 1) % setup.updates.size();
    CheckReport r = setup.uf->Check(update, options);
    if (r.outcome != CheckOutcome::kExecuted) {
      state.SkipWithError(r.Describe().c_str());
      return;
    }
    ++checked;
    benchmark::DoNotOptimize(r);
  }
  ReportCounters(state, setup, checked);
}

void BM_Batched(benchmark::State& state) {
  Setup& setup = SharedSetup();
  CheckOptions options;
  options.apply = false;
  setup.uf->plan_cache().Clear();
  for (const std::string& update : setup.updates) {
    (void)setup.uf->Prepare(update);
  }
  setup.db->ResetWorkCounters();
  setup.uf->plan_cache().ResetCounters();
  int64_t checked = 0;
  for (auto _ : state) {
    std::vector<CheckReport> reports =
        setup.uf->CheckBatch(setup.updates, options);
    for (const CheckReport& r : reports) {
      if (r.outcome != CheckOutcome::kExecuted) {
        state.SkipWithError(r.Describe().c_str());
        return;
      }
    }
    checked += static_cast<int64_t>(reports.size());
    benchmark::DoNotOptimize(reports);
  }
  ReportCounters(state, setup, checked);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Batch throughput: cold vs. cached vs. batched ===\n"
      "Workload: %d distinct leaf deletes over a depth-%d chain view\n"
      "(apply=false). Cold re-compiles per check; Cached hits the plan\n"
      "cache; Batched additionally merges step-3 probes (batch size %d).\n"
      "Expected: items_per_second Cold < Cached < Batched;\n"
      "probe_queries_per_update falls from 2 toward 2/batch.\n\n",
      kBatchSize, kDepth, kBatchSize);
  benchmark::RegisterBenchmark("BatchThroughput/Cold", BM_Cold);
  benchmark::RegisterBenchmark("BatchThroughput/Cached", BM_Cached);
  benchmark::RegisterBenchmark("BatchThroughput/Batched", BM_Batched);
  return ufilter::bench::RunWithJson(argc, argv, "batch_throughput");
}
