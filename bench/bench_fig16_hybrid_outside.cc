// Fig. 16: hybrid vs. outside strategy for a successful delete over Vbush.
//
// Both strategies run the same translated deletes; they differ in how the
// data-level check is performed:
//   - hybrid: the delete queries run directly against the base tables,
//     where Oracle-style indexes exist on the keys and foreign keys;
//   - outside: the context probe is materialized into a temp table (the
//     paper's "TAB_..."), and the per-relation probes join the base tables
//     against that *unindexed* materialization before any delete is issued.
// The paper's shape: hybrid clearly below outside at every database size.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>

#include "fixtures/tpch_views.h"
#include "relational/query.h"
#include "relational/tpch.h"
#include "ufilter/checker.h"
#include "ufilter/translator.h"
#include "ufilter/update_binding.h"
#include "xquery/parser.h"

namespace {

using ufilter::check::BindUpdate;
using ufilter::check::BoundUpdate;
using ufilter::check::Translator;
using ufilter::check::UFilter;
using ufilter::relational::ColRef;
using ufilter::relational::QueryEvaluator;
using ufilter::relational::SelectQuery;

struct Instance {
  std::unique_ptr<ufilter::relational::Database> db;
  std::unique_ptr<UFilter> uf;
  ufilter::xq::UpdateStmt stmt;
};

Instance& InstanceFor(int scale_tenths) {
  static std::map<int, std::unique_ptr<Instance>> instances;
  auto& slot = instances[scale_tenths];
  if (slot == nullptr) {
    slot = std::make_unique<Instance>();
    ufilter::relational::tpch::TpchOptions options;
    options.scale = static_cast<double>(scale_tenths) / 10.0;
    auto db = ufilter::relational::tpch::MakeDatabase(options);
    if (db.ok()) slot->db = std::move(*db);
    auto uf =
        UFilter::Create(slot->db.get(), ufilter::fixtures::VBushQuery());
    if (uf.ok()) slot->uf = std::move(*uf);
    auto stmt = ufilter::xq::ParseUpdate(
        "FOR $nation IN document(\"V.xml\")/nation, $order IN "
        "$nation/order\nWHERE $order/o_orderkey/text() = 5\nUPDATE $nation "
        "{\n  DELETE $order\n}");
    if (stmt.ok()) slot->stmt = std::move(*stmt);
  }
  return *slot;
}

/// Surfaces the per-iteration probe work of the scenario that just ran.
/// Counters are reset at scenario entry so series/scales never accumulate
/// into each other.
void ReportWork(benchmark::State& state,
                ufilter::relational::Database* db) {
  const ufilter::relational::EngineStats stats = db->SnapshotWorkCounters();
  const double iters = static_cast<double>(std::max<int64_t>(
      state.iterations(), 1));
  state.counters["queries_per_iter"] =
      static_cast<double>(stats.queries_executed) / iters;
  state.counters["rows_scanned_per_iter"] =
      static_cast<double>(stats.rows_scanned) / iters;
  // The planner's temp-table rescue: probes against the unindexed
  // materialization show up here instead of as O(n*m) scans.
  state.counters["hash_join_builds_per_iter"] =
      static_cast<double>(stats.hash_join_builds) / iters;
  state.counters["hash_join_probes_per_iter"] =
      static_cast<double>(stats.hash_join_probes) / iters;
  state.counters["index_lookups_per_iter"] =
      static_cast<double>(stats.index_lookups) / iters;
}

/// Hybrid: translate via indexed base-table probes and execute directly.
void BM_Hybrid(benchmark::State& state) {
  Instance& inst = InstanceFor(static_cast<int>(state.range(0)));
  auto* db = inst.db.get();
  db->ResetWorkCounters();
  for (auto _ : state) {
    size_t savepoint = db->Begin();
    auto bound =
        BindUpdate(inst.uf->analyzed_view(), inst.uf->view_asg(), inst.stmt);
    Translator translator(db, &inst.uf->analyzed_view(),
                          &inst.uf->view_asg());
    QueryEvaluator evaluator(db);
    auto victim_query = translator.ComposeVictimProbe(*bound);
    auto victims = evaluator.Execute(*victim_query);
    auto ops = translator.TranslateDelete(*bound, *victim_query, *victims,
                                          /*minimize=*/true);
    for (const auto& op : *ops) {
      auto outcome = db->DeleteWhere(op.table, op.where);
      benchmark::DoNotOptimize(outcome);
    }
    db->Rollback(savepoint);
  }
  state.counters["db_rows"] = static_cast<double>(db->TotalRows());
  ReportWork(state, db);
}

/// Outside: materialize the context probe into an unindexed temp table,
/// pre-probe each target relation by joining against it (scan joins), and
/// only then execute the deletes.
void BM_Outside(benchmark::State& state) {
  Instance& inst = InstanceFor(static_cast<int>(state.range(0)));
  auto* db = inst.db.get();
  db->ResetWorkCounters();
  for (auto _ : state) {
    size_t savepoint = db->Begin();
    auto bound =
        BindUpdate(inst.uf->analyzed_view(), inst.uf->view_asg(), inst.stmt);
    Translator translator(db, &inst.uf->analyzed_view(),
                          &inst.uf->view_asg());
    QueryEvaluator evaluator(db);
    // Materialize the victim chain probe (the paper's TAB_ctx).
    auto victim_query = translator.ComposeVictimProbe(*bound);
    (void)evaluator.MaterializeInto(*victim_query, "TAB_ctx");
    // Pre-probe the target relations joining against the unindexed TAB:
    // base table first (full scan), TAB matched per row.
    for (const auto& [rel, key] :
         std::map<std::string, std::string>{{"orders", "o_orderkey"},
                                            {"lineitem", "l_orderkey"}}) {
      SelectQuery probe;
      probe.tables = {{rel, rel}, {"TAB_ctx", "t"}};
      probe.selects = {ColRef{rel, key}};
      probe.joins = {{ColRef{rel, key}, ufilter::CompareOp::kEq,
                      ColRef{"t", "o_orderkey"}}};
      auto rows = evaluator.Execute(probe);
      benchmark::DoNotOptimize(rows);
    }
    // Now the actual deletes (same translation as hybrid).
    auto victims = evaluator.Execute(*victim_query);
    auto ops = translator.TranslateDelete(*bound, *victim_query, *victims,
                                          /*minimize=*/true);
    for (const auto& op : *ops) {
      auto outcome = db->DeleteWhere(op.table, op.where);
      benchmark::DoNotOptimize(outcome);
    }
    (void)db->DropTempTable("TAB_ctx");
    db->Rollback(savepoint);
  }
  state.counters["db_rows"] = static_cast<double>(db->TotalRows());
  ReportWork(state, db);
}

BENCHMARK(BM_Hybrid)->DenseRange(2, 10, 2);
BENCHMARK(BM_Outside)->DenseRange(2, 10, 2);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Fig. 16: hybrid vs. outside for a delete over Vbush ===\n"
      "Arg = scale/10. Expected shape: hybrid below outside everywhere —\n"
      "the outside strategy pays for scan joins against the unindexed\n"
      "materialized probe table.\n\n");
  return ufilter::bench::RunWithJson(argc, argv, "fig16_hybrid_outside");
}
