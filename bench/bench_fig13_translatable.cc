// Fig. 13: performance of a *translatable* view delete over Vsuccess, per
// target relation (REGION .. LINEITEM), with and without STAR checking.
//
// The paper's claim: the STARChecking overhead is negligible against the
// actual update cost, which falls steeply from REGION (cascades everything)
// to LINEITEM (one tuple). Each iteration runs the full pipeline with
// apply=false so the database stays intact (undo cost is paid identically by
// both series).
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <map>
#include <memory>

#include "fixtures/tpch_views.h"
#include "relational/tpch.h"
#include "ufilter/checker.h"

namespace {

using ufilter::check::CheckOptions;
using ufilter::check::CheckOutcome;
using ufilter::check::UFilter;

struct Setup {
  std::unique_ptr<ufilter::relational::Database> db;
  std::unique_ptr<UFilter> uf;
};

Setup& SharedSetup() {
  static Setup setup = [] {
    Setup s;
    ufilter::relational::tpch::TpchOptions options;
    options.scale = 2.0;
    auto db = ufilter::relational::tpch::MakeDatabase(options);
    if (db.ok()) s.db = std::move(*db);
    auto uf = UFilter::Create(s.db.get(),
                              ufilter::fixtures::VSuccessQuery());
    if (uf.ok()) s.uf = std::move(*uf);
    return s;
  }();
  return setup;
}

const std::map<std::string, int64_t>& LevelKeys() {
  static const std::map<std::string, int64_t> kKeys = {
      {"region", 1}, {"nation", 7}, {"customer", 3}, {"order", 11},
      {"lineitem", 2}};
  return kKeys;
}

void RunLevel(benchmark::State& state, const std::string& level,
              bool with_star) {
  Setup& setup = SharedSetup();
  std::string update =
      ufilter::fixtures::DeleteElementUpdate(level, LevelKeys().at(level));
  CheckOptions options;
  options.apply = false;
  options.run_star = with_star;
  // The figure measures the *per-update* pipeline cost; keep the plan cache
  // out so every iteration pays parse/bind/validate(/STAR) like the paper's
  // per-request setting (the cached path is bench_batch_throughput's job).
  options.use_plan_cache = false;
  int64_t rows = 0;
  for (auto _ : state) {
    auto report = setup.uf->Check(update, options);
    if (report.outcome != CheckOutcome::kExecuted) {
      state.SkipWithError(report.Describe().c_str());
      return;
    }
    rows = report.rows_affected;
    benchmark::DoNotOptimize(report);
  }
  state.counters["rows_deleted"] = static_cast<double>(rows);
}

void RegisterAll() {
  for (const char* level :
       {"region", "nation", "customer", "order", "lineitem"}) {
    benchmark::RegisterBenchmark(
        (std::string("Fig13/Update/") + level).c_str(),
        [level](benchmark::State& s) { RunLevel(s, level, false); });
    benchmark::RegisterBenchmark(
        (std::string("Fig13/UpdateWithSTARChecking/") + level).c_str(),
        [level](benchmark::State& s) { RunLevel(s, level, true); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Fig. 13: translatable delete over Vsuccess ===\n"
      "Series: Update vs. Update-with-STARChecking per target relation.\n"
      "Expected shape: per-level times fall Region >> Nation >> ... >>\n"
      "Lineitem; the two series are indistinguishable (STAR is ~us).\n\n");
  RegisterAll();
  return ufilter::bench::RunWithJson(argc, argv, "fig13_translatable");
}
