// Row-store vs. columnar full scans over published MVCC snapshots.
//
// One unindexed predicate shape, two access paths:
//
//   - BM_FullScanRow: the classic path — AllRowIds + per-row GetRow +
//     EvalCompare over boxed Values (variant dispatch per cell).
//   - BM_FullScanColumnar: the context pins a snapshot, so the executor
//     runs the same predicates as tight typed loops over the version's
//     column arrays, compacting one selection vector, and fetches only the
//     survivors from the row store.
//
// Args are {table_rows, selectivity_permille}: the first filter
// (val < permille * 1000 over a uniform [0, 1e6) column) keeps ~permille/1000
// of the rows; a second 50% filter (weight >= 500000) exercises the fused
// conjunction. Results are identical by construction (the differential suite
// proves it); this file measures the gap. Emits BENCH_scan.json; CI requires
// both series and gates BM_FullScanRow/262144/8 vs
// BM_FullScanColumnar/262144/8 at >= 4x (tools/compare_bench.py --pair).
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "relational/database.h"
#include "relational/query.h"

namespace {

using ufilter::Value;
using ufilter::ValueType;
using ufilter::relational::ColRef;
using ufilter::relational::Database;
using ufilter::relational::DatabaseSchema;
using ufilter::relational::EngineStats;
using ufilter::relational::QueryEvaluator;
using ufilter::relational::Row;
using ufilter::relational::SelectQuery;
using ufilter::relational::TableSchema;

/// One `events` table of `rows` rows: id INT PK, val DOUBLE uniform over
/// [0, 1e6), weight INT uniform over [0, 1e6). Values are derived from the
/// row number (Knuth multiplicative hashes) so every run sees identical
/// data. Databases are cached per size and shared by both access paths.
Database* GetDb(int64_t rows) {
  static std::map<int64_t, std::unique_ptr<Database>> cache;
  auto it = cache.find(rows);
  if (it != cache.end()) return it->second.get();

  DatabaseSchema schema;
  TableSchema events("events");
  events.AddColumn("id", ValueType::kInt, /*not_null=*/true);
  events.AddColumn("val", ValueType::kDouble);
  events.AddColumn("weight", ValueType::kInt);
  events.SetPrimaryKey({"id"});
  if (!schema.AddTable(events).ok()) return nullptr;
  auto made = Database::Create(std::move(schema));
  if (!made.ok()) return nullptr;
  std::unique_ptr<Database> db = std::move(*made);
  for (int64_t i = 0; i < rows; ++i) {
    const uint64_t u = static_cast<uint64_t>(i);
    Row row = {Value::Int(i),
               Value::Double(static_cast<double>((u * 2654435761ULL) % 1000000)),
               Value::Int(static_cast<int64_t>((u * 40503ULL) % 1000000))};
    if (!db->Insert("events", std::move(row)).ok()) return nullptr;
  }
  db->Checkpoint();  // the fixture is permanent; drop the undo log
  Database* out = db.get();
  cache.emplace(rows, std::move(db));
  return out;
}

SelectQuery ScanQuery(int64_t permille) {
  SelectQuery q;
  q.tables = {{"events", "e"}};
  q.selects = {ColRef{"e", "id"}};
  q.filters = {{ColRef{"e", "val"}, ufilter::CompareOp::kLt,
                Value::Double(static_cast<double>(permille) * 1000.0)},
               {ColRef{"e", "weight"}, ufilter::CompareOp::kGe,
                Value::Int(500000)}};
  return q;
}

void ReportWork(benchmark::State& state, Database* db) {
  const EngineStats stats = db->SnapshotWorkCounters();
  const double iters =
      static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  state.counters["rows_scanned_per_iter"] =
      static_cast<double>(stats.rows_scanned) / iters;
  state.counters["columnar_scan_rows_per_iter"] =
      static_cast<double>(stats.columnar_scan_rows) / iters;
  state.counters["selection_vector_rows_per_iter"] =
      static_cast<double>(stats.selection_vector_rows) / iters;
  state.counters["columnar_builds"] =
      static_cast<double>(stats.columnar_builds);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_FullScanRow(benchmark::State& state) {
  Database* db = GetDb(state.range(0));
  if (db == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  SelectQuery q = ScanQuery(state.range(1));
  QueryEvaluator eval(db);
  db->ResetWorkCounters();
  for (auto _ : state) {
    auto r = eval.Execute(q);
    benchmark::DoNotOptimize(r);
  }
  ReportWork(state, db);
}

void BM_FullScanColumnar(benchmark::State& state) {
  Database* db = GetDb(state.range(0));
  if (db == nullptr) {
    state.SkipWithError("fixture build failed");
    return;
  }
  SelectQuery q = ScanQuery(state.range(1));
  QueryEvaluator eval(db);
  // Pin once for the whole run (a service fast-path check pins per
  // request, but the pin itself is a mutex-guarded pointer copy measured
  // by bench_concurrency; here we isolate the scan).
  db->root_context()->PinReadSnapshot(db->OpenSnapshot());
  {
    auto warm = eval.Execute(q);  // build the column cache outside timing
    benchmark::DoNotOptimize(warm);
  }
  db->ResetWorkCounters();
  for (auto _ : state) {
    auto r = eval.Execute(q);
    benchmark::DoNotOptimize(r);
  }
  ReportWork(state, db);
  db->root_context()->ClearReadSnapshot();
}

// Size sweep at 6.4% selectivity, plus a selectivity sweep at the largest
// size. Permille values {8, 64, 512} are chosen prefix-free so --pair can
// address any single point.
BENCHMARK(BM_FullScanRow)
    ->Args({4096, 64})
    ->Args({32768, 64})
    ->Args({262144, 8})
    ->Args({262144, 64})
    ->Args({262144, 512});
BENCHMARK(BM_FullScanColumnar)
    ->Args({4096, 64})
    ->Args({32768, 64})
    ->Args({262144, 8})
    ->Args({262144, 64})
    ->Args({262144, 512});

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Full scans: row path vs. columnar selection vectors ===\n"
      "Args = {rows, selectivity_permille}. Both paths return identical\n"
      "results; the columnar one runs the predicates as typed loops over\n"
      "the pinned version's column arrays.\n\n");
  return ufilter::bench::RunWithJson(argc, argv, "scan");
}
