// Thread scaling of the concurrent check service: checks/sec for the PR 2
// cached-plan batch workload (64 distinct leaf deletes over a depth-4
// chain view, apply=false) pushed through a CheckService with 1 / 2 / 4 / 8
// worker threads. Check-only traffic runs on the service's read-only fast
// path under a shared reader lock, so on a multi-core machine items/sec
// should scale close to linearly until the core count is exhausted; on a
// single core all thread counts land within noise of each other (the
// headline ratio ConcurrentChecks/threads:8 / threads:1 is only meaningful
// with >= 8 cores). Counters attached per run: fast-path vs. writer-lane
// requests and plan-cache hits, so a scaling regression can be told apart
// from an escalation regression.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "fixtures/synthetic.h"
#include "service/check_service.h"

namespace {

using ufilter::check::CheckOptions;
using ufilter::check::CheckOutcome;
using ufilter::check::CheckReport;
using ufilter::check::UFilter;
using ufilter::service::CheckService;
using ufilter::service::CheckServiceOptions;
using ufilter::service::CheckServiceStats;
using ufilter::service::Session;

constexpr int kDepth = 4;
constexpr int kRowsPerLevel = 200;
constexpr int kBatchSize = 64;     // the PR 2 batch workload
constexpr int kChecksPerIter = 512;

struct Setup {
  std::unique_ptr<ufilter::relational::Database> db;
  std::unique_ptr<UFilter> uf;
  std::vector<std::string> updates;
};

Setup& SharedSetup() {
  static Setup setup = [] {
    Setup s;
    auto db = ufilter::fixtures::MakeChainDatabase(kDepth, kRowsPerLevel);
    if (db.ok()) s.db = std::move(*db);
    auto uf = UFilter::Create(s.db.get(),
                              ufilter::fixtures::ChainViewQuery(kDepth));
    if (uf.ok()) s.uf = std::move(*uf);
    for (int k = 0; k < kBatchSize; ++k) {
      s.updates.push_back(ufilter::fixtures::ChainDeleteUpdate(kDepth - 1, k));
    }
    return s;
  }();
  return setup;
}

void BM_ConcurrentChecks(benchmark::State& state) {
  Setup& setup = SharedSetup();
  const int threads = static_cast<int>(state.range(0));
  CheckOptions dry;
  dry.apply = false;

  CheckServiceOptions options;
  options.worker_threads = threads;
  options.queue_capacity = kChecksPerIter;
  CheckService svc(setup.uf.get(), options);
  std::vector<std::shared_ptr<Session>> sessions;
  for (int t = 0; t < threads; ++t) sessions.push_back(svc.OpenSession());

  // Warm the plan cache outside the timed region (cached-plan workload).
  for (const std::string& update : setup.updates) {
    (void)setup.uf->Prepare(update);
  }

  CheckServiceStats before = svc.Snapshot();
  int64_t checked = 0;
  std::vector<std::future<CheckReport>> futures;
  futures.reserve(kChecksPerIter);
  for (auto _ : state) {
    futures.clear();
    for (int i = 0; i < kChecksPerIter; ++i) {
      const std::string& update =
          setup.updates[static_cast<size_t>(i) % setup.updates.size()];
      futures.push_back(svc.Submit(
          sessions[static_cast<size_t>(i) % sessions.size()], update, dry));
    }
    for (auto& f : futures) {
      CheckReport r = f.get();
      if (r.outcome != CheckOutcome::kExecuted) {
        state.SkipWithError(r.Describe().c_str());
        return;
      }
      ++checked;
    }
  }
  CheckServiceStats after = svc.Snapshot();
  state.SetItemsProcessed(checked);
  state.counters["worker_threads"] = threads;
  state.counters["fast_path"] =
      static_cast<double>(after.fast_path - before.fast_path);
  state.counters["writer_lane"] =
      static_cast<double>(after.writer_lane - before.writer_lane);
  state.counters["plan_cache_hits"] =
      static_cast<double>(after.plan_cache.hits - before.plan_cache.hits);
  state.counters["queue_high_water"] =
      static_cast<double>(after.queue_high_water);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Concurrent check service: thread scaling ===\n"
      "Workload: %d cached leaf-delete templates over a depth-%d chain view\n"
      "(apply=false), %d checks per iteration through a CheckService with\n"
      "1/2/4/8 workers. Check-only traffic runs read-only under a shared\n"
      "lock; items_per_second should scale with cores (flat on 1 core).\n\n",
      kBatchSize, kDepth, kChecksPerIter);
  benchmark::RegisterBenchmark("ConcurrentChecks", BM_ConcurrentChecks)
      ->Arg(1)
      ->Arg(2)
      ->Arg(4)
      ->Arg(8)
      ->UseRealTime()
      ->MeasureProcessCPUTime();
  return ufilter::bench::RunWithJson(argc, argv, "concurrency");
}
