// Thread scaling of the concurrent check service: checks/sec for the PR 2
// cached-plan batch workload (64 distinct leaf deletes over a depth-4
// chain view, apply=false) pushed through a CheckService with 1 / 2 / 4 / 8
// worker threads. Check-only traffic runs on the service's snapshot fast
// path (pinned MVCC epoch, no lock held during probes), so on a multi-core
// machine items/sec should scale close to linearly until the core count is
// exhausted; on a single core all thread counts land within noise of each
// other (the headline ratio ConcurrentChecks/threads:8 / threads:1 is only
// meaningful with >= 8 cores). Counters attached per run: fast-path vs.
// writer-lane requests and plan-cache hits, so a scaling regression can be
// told apart from an escalation regression.
//
// MixedChecksOneWriter is the mixed read+write sweep (writers=1): the same
// check workload while one client continuously applies value replacements
// through the writer lane. Snapshot isolation means the checks' only
// synchronization is the snapshot-open mutex: reader_wait_ns_per_iter stays
// ~0 even though the writer commits a new epoch per request. The headline
// acceptance (ISSUE 5) is mixed throughput >= 80% of the read-only sweep at
// the same worker count on a multi-core box; on the single-core container,
// assert via reader_wait_ns ~ 0 instead (see docs/BENCHMARKS.md).
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../tests/support/temp_dir.h"
#include "fixtures/synthetic.h"
#include "relational/wal.h"
#include "service/check_service.h"

namespace {

using ufilter::check::CheckOptions;
using ufilter::check::CheckOutcome;
using ufilter::check::CheckReport;
using ufilter::check::UFilter;
using ufilter::service::CheckService;
using ufilter::service::CheckServiceOptions;
using ufilter::service::CheckServiceStats;
using ufilter::service::Session;

constexpr int kDepth = 4;
constexpr int kRowsPerLevel = 200;
constexpr int kBatchSize = 64;     // the PR 2 batch workload
constexpr int kChecksPerIter = 512;

struct Setup {
  std::unique_ptr<ufilter::relational::Database> db;
  std::unique_ptr<UFilter> uf;
  std::vector<std::string> updates;
};

Setup& SharedSetup() {
  static Setup setup = [] {
    Setup s;
    auto db = ufilter::fixtures::MakeChainDatabase(kDepth, kRowsPerLevel);
    if (db.ok()) s.db = std::move(*db);
    auto uf = UFilter::Create(s.db.get(),
                              ufilter::fixtures::ChainViewQuery(kDepth));
    if (uf.ok()) s.uf = std::move(*uf);
    for (int k = 0; k < kBatchSize; ++k) {
      s.updates.push_back(ufilter::fixtures::ChainDeleteUpdate(kDepth - 1, k));
    }
    return s;
  }();
  return setup;
}

void BM_ConcurrentChecks(benchmark::State& state) {
  Setup& setup = SharedSetup();
  const int threads = static_cast<int>(state.range(0));
  CheckOptions dry;
  dry.apply = false;

  CheckServiceOptions options;
  options.worker_threads = threads;
  options.queue_capacity = kChecksPerIter;
  CheckService svc(setup.uf.get(), options);
  std::vector<std::shared_ptr<Session>> sessions;
  for (int t = 0; t < threads; ++t) sessions.push_back(svc.OpenSession());

  // Warm the plan cache outside the timed region (cached-plan workload).
  for (const std::string& update : setup.updates) {
    (void)setup.uf->Prepare(update);
  }

  CheckServiceStats before = svc.Snapshot();
  int64_t checked = 0;
  std::vector<std::future<CheckReport>> futures;
  futures.reserve(kChecksPerIter);
  for (auto _ : state) {
    futures.clear();
    for (int i = 0; i < kChecksPerIter; ++i) {
      const std::string& update =
          setup.updates[static_cast<size_t>(i) % setup.updates.size()];
      futures.push_back(svc.Submit(
          sessions[static_cast<size_t>(i) % sessions.size()], update, dry));
    }
    for (auto& f : futures) {
      CheckReport r = f.get();
      if (r.outcome != CheckOutcome::kExecuted) {
        state.SkipWithError(r.Describe().c_str());
        return;
      }
      ++checked;
    }
  }
  CheckServiceStats after = svc.Snapshot();
  state.SetItemsProcessed(checked);
  state.counters["worker_threads"] = threads;
  state.counters["writers"] = 0;
  state.counters["fast_path"] =
      static_cast<double>(after.fast_path - before.fast_path);
  state.counters["writer_lane"] =
      static_cast<double>(after.writer_lane - before.writer_lane);
  state.counters["plan_cache_hits"] =
      static_cast<double>(after.plan_cache.hits - before.plan_cache.hits);
  state.counters["queue_high_water"] =
      static_cast<double>(after.queue_high_water);
}

// The mixed sweep: same check workload, plus one writer client saturating
// the writer lane with apply=true value replacements (each one commits a
// new epoch). Checks keep running against their pinned snapshots.
void BM_MixedChecksOneWriter(benchmark::State& state) {
  Setup& setup = SharedSetup();
  const int threads = static_cast<int>(state.range(0));
  CheckOptions dry;
  dry.apply = false;
  CheckOptions apply;  // defaults: apply=true

  CheckServiceOptions options;
  // One extra worker so the writer's lane occupancy never starves the
  // check workers themselves.
  options.worker_threads = threads + 1;
  options.queue_capacity = kChecksPerIter + 64;
  CheckService svc(setup.uf.get(), options);
  std::vector<std::shared_ptr<Session>> sessions;
  for (int t = 0; t < threads; ++t) sessions.push_back(svc.OpenSession());
  auto writer_session = svc.OpenSession();

  // Writer templates: recolor leaf values in place — repeatable forever,
  // every apply commits one epoch. Two colors per key so the plan cache
  // serves every template after warmup.
  std::vector<std::string> writes;
  for (int k = 0; k < kBatchSize; ++k) {
    writes.push_back(
        ufilter::fixtures::ChainReplaceUpdate(kDepth - 1, k, "w0"));
    writes.push_back(
        ufilter::fixtures::ChainReplaceUpdate(kDepth - 1, k, "w1"));
  }
  for (const std::string& update : setup.updates) {
    (void)setup.uf->Prepare(update);
  }
  for (const std::string& update : writes) {
    (void)setup.uf->Prepare(update);
  }

  std::atomic<bool> stop{false};
  std::atomic<int64_t> commits{0};
  std::thread writer([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      CheckReport r =
          svc.Submit(writer_session, writes[i++ % writes.size()], apply)
              .get();
      if (r.outcome == CheckOutcome::kExecuted) {
        commits.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  CheckServiceStats before = svc.Snapshot();
  int64_t checked = 0;
  std::vector<std::future<CheckReport>> futures;
  futures.reserve(kChecksPerIter);
  for (auto _ : state) {
    futures.clear();
    for (int i = 0; i < kChecksPerIter; ++i) {
      const std::string& update =
          setup.updates[static_cast<size_t>(i) % setup.updates.size()];
      futures.push_back(svc.Submit(
          sessions[static_cast<size_t>(i) % sessions.size()], update, dry));
    }
    for (auto& f : futures) {
      CheckReport r = f.get();
      if (r.outcome != CheckOutcome::kExecuted) {
        stop.store(true, std::memory_order_release);
        writer.join();
        state.SkipWithError(r.Describe().c_str());
        return;
      }
      ++checked;
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  CheckServiceStats after = svc.Snapshot();
  const double iters = static_cast<double>(state.iterations());
  state.SetItemsProcessed(checked);
  state.counters["worker_threads"] = threads;
  state.counters["writers"] = 1;
  state.counters["writer_commits"] = static_cast<double>(commits.load());
  state.counters["fast_path"] =
      static_cast<double>(after.fast_path - before.fast_path);
  state.counters["writer_lane"] =
      static_cast<double>(after.writer_lane - before.writer_lane);
  state.counters["epochs_published"] =
      static_cast<double>(after.commit_epoch - before.commit_epoch);
  state.counters["versions_retired"] =
      static_cast<double>(after.versions_retired - before.versions_retired);
  // The acceptance counter: time snapshot readers spent blocked, per
  // iteration. Stays ~0 — readers never inherit writer-lane latency.
  state.counters["reader_wait_ns_per_iter"] =
      iters > 0
          ? static_cast<double>(after.reader_wait_ns - before.reader_wait_ns) /
                iters
          : 0;
}

// The mixed sweep again, with the writer's commits logged to a real WAL
// (fsync=group). Reader throughput and reader_wait_ns_per_iter should be
// indistinguishable from MixedChecksOneWriter — WAL file I/O happens
// outside the snapshot mutex and snapshot checks never flush epochs they
// didn't publish. Uses its own (smaller) durable database so the shared
// in-memory setup stays WAL-free.
void BM_MixedChecksOneWriterWal(benchmark::State& state) {
  constexpr int kWalDepth = 3;
  constexpr int kWalRows = 100;
  const int threads = static_cast<int>(state.range(0));
  ufilter::test_support::TempDir tmp("ufilter_bench_conc");
  auto created = ufilter::relational::Database::Create(
      ufilter::fixtures::MakeChainSchema(kWalDepth));
  if (!created.ok()) {
    state.SkipWithError(created.status().ToString().c_str());
    return;
  }
  std::unique_ptr<ufilter::relational::Database> db = std::move(*created);
  ufilter::relational::DurabilityOptions durability;
  durability.wal_path = tmp.path("mixed.wal");
  durability.fsync_policy = ufilter::relational::FsyncPolicy::kGroup;
  durability.group_commit_size = 8;
  ufilter::Status enabled = db->EnableDurability(durability);
  if (!enabled.ok()) {
    state.SkipWithError(enabled.ToString().c_str());
    return;
  }
  ufilter::Status seeded =
      ufilter::fixtures::PopulateChain(db.get(), kWalDepth, kWalRows);
  if (!seeded.ok()) {
    state.SkipWithError(seeded.ToString().c_str());
    return;
  }
  auto uf = UFilter::Create(db.get(),
                            ufilter::fixtures::ChainViewQuery(kWalDepth));
  if (!uf.ok()) {
    state.SkipWithError(uf.status().ToString().c_str());
    return;
  }

  CheckOptions dry;
  dry.apply = false;
  CheckOptions apply;
  CheckServiceOptions options;
  options.worker_threads = threads + 1;
  options.queue_capacity = kChecksPerIter + 64;
  CheckService svc(uf->get(), options);
  std::vector<std::shared_ptr<Session>> sessions;
  for (int t = 0; t < threads; ++t) sessions.push_back(svc.OpenSession());
  auto writer_session = svc.OpenSession();

  std::vector<std::string> checks;
  std::vector<std::string> writes;
  for (int k = 0; k < kBatchSize; ++k) {
    checks.push_back(
        ufilter::fixtures::ChainDeleteUpdate(kWalDepth - 1, k));
    writes.push_back(
        ufilter::fixtures::ChainReplaceUpdate(kWalDepth - 1, k, "w0"));
    writes.push_back(
        ufilter::fixtures::ChainReplaceUpdate(kWalDepth - 1, k, "w1"));
  }
  for (const std::string& u : checks) (void)(*uf)->Prepare(u);
  for (const std::string& u : writes) (void)(*uf)->Prepare(u);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> commits{0};
  std::thread writer([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      CheckReport r =
          svc.Submit(writer_session, writes[i++ % writes.size()], apply)
              .get();
      if (r.outcome == CheckOutcome::kExecuted) {
        commits.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  CheckServiceStats before = svc.Snapshot();
  int64_t checked = 0;
  std::vector<std::future<CheckReport>> futures;
  futures.reserve(kChecksPerIter);
  for (auto _ : state) {
    futures.clear();
    for (int i = 0; i < kChecksPerIter; ++i) {
      futures.push_back(svc.Submit(
          sessions[static_cast<size_t>(i) % sessions.size()],
          checks[static_cast<size_t>(i) % checks.size()], dry));
    }
    for (auto& f : futures) {
      CheckReport r = f.get();
      if (r.outcome != CheckOutcome::kExecuted) {
        stop.store(true, std::memory_order_release);
        writer.join();
        state.SkipWithError(r.Describe().c_str());
        return;
      }
      ++checked;
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  CheckServiceStats after = svc.Snapshot();
  const double iters = static_cast<double>(state.iterations());
  state.SetItemsProcessed(checked);
  state.counters["worker_threads"] = threads;
  state.counters["writers"] = 1;
  state.counters["writer_commits"] = static_cast<double>(commits.load());
  state.counters["wal_records"] =
      static_cast<double>(after.wal_records - before.wal_records);
  state.counters["wal_fsyncs"] =
      static_cast<double>(after.wal_fsyncs - before.wal_fsyncs);
  state.counters["reader_wait_ns_per_iter"] =
      iters > 0
          ? static_cast<double>(after.reader_wait_ns - before.reader_wait_ns) /
                iters
          : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Concurrent check service: thread scaling ===\n"
      "Workload: %d cached leaf-delete templates over a depth-%d chain view\n"
      "(apply=false), %d checks per iteration through a CheckService with\n"
      "1/2/4/8 workers. Check-only traffic runs against pinned MVCC\n"
      "snapshots with no lock held; items_per_second should scale with\n"
      "cores (flat on 1 core). MixedChecksOneWriter repeats the sweep with\n"
      "one concurrent apply=true writer client: reader_wait_ns_per_iter\n"
      "staying ~0 is the readers-never-block acceptance counter.\n\n",
      kBatchSize, kDepth, kChecksPerIter);
  benchmark::RegisterBenchmark("ConcurrentChecks", BM_ConcurrentChecks)
      ->Arg(1)
      ->Arg(2)
      ->Arg(4)
      ->Arg(8)
      ->UseRealTime()
      ->MeasureProcessCPUTime();
  benchmark::RegisterBenchmark("MixedChecksOneWriter",
                               BM_MixedChecksOneWriter)
      ->Arg(1)
      ->Arg(2)
      ->Arg(4)
      ->Arg(8)
      ->UseRealTime()
      ->MeasureProcessCPUTime();
  benchmark::RegisterBenchmark("MixedChecksOneWriterWal",
                               BM_MixedChecksOneWriterWal)
      ->Arg(4)
      ->UseRealTime()
      ->MeasureProcessCPUTime();
  return ufilter::bench::RunWithJson(argc, argv, "concurrency");
}
