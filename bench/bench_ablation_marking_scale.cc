// Ablation (Section 7.1): the STAR marking procedure runs in polynomial
// time in the size of the view query, and the dynamic STAR *checking*
// procedure is O(1) ("takes only a hash operation time"). Sweeps synthetic
// FK-chain views of growing depth.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <cstdio>
#include <map>
#include <memory>

#include "asg/view_asg.h"
#include "fixtures/synthetic.h"
#include "ufilter/star.h"
#include "view/analyzed_view.h"
#include "xquery/parser.h"

namespace {

using ufilter::asg::BaseAsg;
using ufilter::asg::ViewAsg;
using ufilter::view::AnalyzedView;

struct Compiled {
  std::unique_ptr<ufilter::relational::Database> db;
  ufilter::xq::ViewQuery query;
  std::unique_ptr<AnalyzedView> view;
  std::unique_ptr<ViewAsg> gv;
  BaseAsg gd;
  int deepest_node = -1;
};

Compiled* CompiledFor(int depth) {
  static std::map<int, std::unique_ptr<Compiled>> cache;
  auto& slot = cache[depth];
  if (slot == nullptr) {
    slot = std::make_unique<Compiled>();
    auto db = ufilter::fixtures::MakeChainDatabase(depth, 2);
    if (!db.ok()) return nullptr;
    slot->db = std::move(*db);
    auto q = ufilter::xq::ParseViewQuery(
        ufilter::fixtures::ChainViewQuery(depth));
    if (!q.ok()) return nullptr;
    slot->query = std::move(*q);
    auto v = AnalyzedView::Analyze(slot->query, &slot->db->schema());
    if (!v.ok()) return nullptr;
    slot->view = std::move(*v);
    auto gv = ViewAsg::Build(*slot->view);
    if (!gv.ok()) return nullptr;
    slot->gv = std::move(*gv);
    slot->gd = BaseAsg::Build(*slot->view);
    // Find the deepest internal node for the checking micro-bench.
    for (const auto& node : slot->gv->nodes()) {
      if (node.is_internal()) slot->deepest_node = node.id;
    }
  }
  return slot.get();
}

void BM_MarkingByViewDepth(benchmark::State& state) {
  Compiled* c = CompiledFor(static_cast<int>(state.range(0)));
  if (c == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  for (auto _ : state) {
    auto st = ufilter::check::MarkViewAsg(c->gv.get(), c->gd);
    benchmark::DoNotOptimize(st);
  }
  state.counters["asg_nodes"] =
      static_cast<double>(c->gv->nodes().size());
}
BENCHMARK(BM_MarkingByViewDepth)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_StarCheckingIsConstant(benchmark::State& state) {
  Compiled* c = CompiledFor(static_cast<int>(state.range(0)));
  if (c == nullptr) {
    state.SkipWithError("setup failed");
    return;
  }
  (void)ufilter::check::MarkViewAsg(c->gv.get(), c->gd);
  for (auto _ : state) {
    auto verdict = ufilter::check::CheckStar(
        *c->gv, c->deepest_node, ufilter::xq::UpdateOpType::kDelete);
    benchmark::DoNotOptimize(verdict);
  }
}
BENCHMARK(BM_StarCheckingIsConstant)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== Ablation: STAR marking cost vs. view-query size (Section 7.1) "
      "===\n"
      "Marking should grow polynomially (roughly quadratically: Rules 2/3\n"
      "compare node pairs) with depth; the checking procedure should stay\n"
      "flat.\n\n");
  return ufilter::bench::RunWithJson(argc, argv, "ablation_marking_scale");
}
