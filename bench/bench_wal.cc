// Durability cost of the write-ahead log: commit latency of one writer-lane
// epoch (a recolor UpdateWhere + WriterGuard publish) with durability off
// (baseline) vs. WAL with fsync=never / group(128) / always, plus
// ChecksUnderDurableWriter — the PR 5 mixed sweep with the writer forced
// through fsync=always, proving snapshot checks never inherit fsync
// latency (reader_wait_ns_per_iter ~ 0, checks/sec within noise of the
// non-durable sweep).
//
// Acceptance (ISSUE 6): fsync=group commit latency within 2x of the
// in-memory baseline — gated via
//   compare_bench.py BENCH_wal.json --pair CommitLatency_baseline
//       CommitLatency_group --min-speedup 0.5
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <atomic>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../tests/support/temp_dir.h"
#include "fixtures/synthetic.h"
#include "relational/wal.h"
#include "service/check_service.h"

namespace {

using ufilter::Status;
using ufilter::Value;
using ufilter::check::CheckOptions;
using ufilter::check::CheckOutcome;
using ufilter::check::CheckReport;
using ufilter::check::UFilter;
using ufilter::relational::Database;
using ufilter::relational::DurabilityOptions;
using ufilter::relational::FsyncPolicy;
using ufilter::service::CheckService;
using ufilter::service::CheckServiceOptions;
using ufilter::service::CheckServiceStats;
using ufilter::service::Session;
using ufilter::test_support::TempDir;

constexpr int kDepth = 2;
constexpr int kRows = 64;

enum class Mode { kBaseline, kNever, kGroup, kAlways };

// One timed iteration = one committed epoch: WriterGuard around a recolor
// of one leaf (alternating colors so every commit is genuinely dirty),
// publish, WAL append and policy-driven fsync on the way out.
void BM_CommitLatency(benchmark::State& state, Mode mode) {
  TempDir tmp("ufilter_bench_wal");
  auto created =
      Database::Create(ufilter::fixtures::MakeChainSchema(kDepth));
  if (!created.ok()) {
    state.SkipWithError(created.status().ToString().c_str());
    return;
  }
  std::unique_ptr<Database> db = std::move(*created);
  if (mode != Mode::kBaseline) {
    DurabilityOptions opts;
    opts.wal_path = tmp.path("commit.wal");
    opts.fsync_policy = mode == Mode::kNever    ? FsyncPolicy::kNever
                        : mode == Mode::kGroup ? FsyncPolicy::kGroup
                                               : FsyncPolicy::kAlways;
    // Deep enough to amortize a spinning-disk-class fsync (~200us on this
    // container's ext4 /tmp) below the in-memory commit cost; the engine
    // default of 8 is tuned for latency, not for this throughput gate.
    opts.group_commit_size = 128;
    Status st = db->EnableDurability(opts);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  Status seeded =
      ufilter::fixtures::PopulateChain(db.get(), kDepth, kRows);
  if (!seeded.ok()) {
    state.SkipWithError(seeded.ToString().c_str());
    return;
  }

  const std::string leaf_table = "t" + std::to_string(kDepth - 1);
  const std::string key_col = "k" + std::to_string(kDepth - 1);
  const std::string val_col = "v" + std::to_string(kDepth - 1);
  int64_t i = 0;
  for (auto _ : state) {
    Database::WriterGuard guard(db.get());
    auto updated = db->UpdateWhere(
        leaf_table,
        {{val_col, Value::String(i % 2 == 0 ? "w0" : "w1")}},
        {{key_col, ufilter::CompareOp::kEq, Value::Int(i % kRows)}});
    if (!updated.ok()) {
      state.SkipWithError(updated.status().ToString().c_str());
      return;
    }
    ++i;
  }
  Status synced = db->SyncWal();
  if (!synced.ok() || !db->wal_status().ok()) {
    state.SkipWithError("WAL went unhealthy during the run");
    return;
  }
  ufilter::relational::EngineStats engine = db->SnapshotWorkCounters();
  state.SetItemsProcessed(i);
  state.counters["wal_records"] = static_cast<double>(engine.wal_records);
  state.counters["wal_fsyncs"] = static_cast<double>(engine.wal_fsyncs);
  state.counters["wal_bytes_per_commit"] =
      i > 0 ? static_cast<double>(engine.wal_bytes) /
                  static_cast<double>(i)
            : 0;
}

// The PR 5 mixed sweep under the harshest durability setting: one client
// saturates the writer lane with fsync=always applies while N sessions run
// check-only traffic on the snapshot fast path. The WAL flush protocol
// (publish under the snapshot mutex, file I/O outside it, readers only
// flush epochs they themselves published) keeps reader_wait_ns_per_iter at
// ~0 — checks never pay for the writer's fsyncs.
void BM_ChecksUnderDurableWriter(benchmark::State& state) {
  constexpr int kChecksPerIter = 256;
  TempDir tmp("ufilter_bench_walsvc");
  auto created =
      Database::Create(ufilter::fixtures::MakeChainSchema(kDepth));
  if (!created.ok()) {
    state.SkipWithError(created.status().ToString().c_str());
    return;
  }
  std::unique_ptr<Database> db = std::move(*created);
  Status seeded =
      ufilter::fixtures::PopulateChain(db.get(), kDepth, kRows);
  if (!seeded.ok()) {
    state.SkipWithError(seeded.ToString().c_str());
    return;
  }
  auto uf =
      UFilter::Create(db.get(), ufilter::fixtures::ChainViewQuery(kDepth));
  if (!uf.ok()) {
    state.SkipWithError(uf.status().ToString().c_str());
    return;
  }

  CheckServiceOptions options;
  options.worker_threads = 5;  // 4 checkers + the writer's occupancy
  options.queue_capacity = kChecksPerIter + 64;
  options.durability.wal_path = tmp.path("svc.wal");
  options.durability.fsync_policy = FsyncPolicy::kAlways;
  CheckService svc(uf->get(), options);
  if (!svc.durability_status().ok()) {
    state.SkipWithError(svc.durability_status().ToString().c_str());
    return;
  }

  CheckOptions dry;
  dry.apply = false;
  CheckOptions apply;
  std::vector<std::shared_ptr<Session>> sessions;
  for (int t = 0; t < 4; ++t) sessions.push_back(svc.OpenSession());
  auto writer_session = svc.OpenSession();

  std::vector<std::string> checks;
  std::vector<std::string> writes;
  for (int k = 0; k < 16; ++k) {
    checks.push_back(
        ufilter::fixtures::ChainDeleteUpdate(kDepth - 1, k));
    writes.push_back(
        ufilter::fixtures::ChainReplaceUpdate(kDepth - 1, k, "w0"));
    writes.push_back(
        ufilter::fixtures::ChainReplaceUpdate(kDepth - 1, k, "w1"));
  }
  for (const std::string& u : checks) (void)(*uf)->Prepare(u);
  for (const std::string& u : writes) (void)(*uf)->Prepare(u);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> commits{0};
  std::thread writer([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      CheckReport r =
          svc.Submit(writer_session, writes[i++ % writes.size()], apply)
              .get();
      if (r.outcome == CheckOutcome::kExecuted) {
        commits.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  CheckServiceStats before = svc.Snapshot();
  int64_t checked = 0;
  std::vector<std::future<CheckReport>> futures;
  futures.reserve(kChecksPerIter);
  for (auto _ : state) {
    futures.clear();
    for (int i = 0; i < kChecksPerIter; ++i) {
      futures.push_back(svc.Submit(
          sessions[static_cast<size_t>(i) % sessions.size()],
          checks[static_cast<size_t>(i) % checks.size()], dry));
    }
    for (auto& f : futures) {
      CheckReport r = f.get();
      if (r.outcome != CheckOutcome::kExecuted) {
        stop.store(true, std::memory_order_release);
        writer.join();
        state.SkipWithError(r.Describe().c_str());
        return;
      }
      ++checked;
    }
  }
  stop.store(true, std::memory_order_release);
  writer.join();

  CheckServiceStats after = svc.Snapshot();
  const double iters = static_cast<double>(state.iterations());
  state.SetItemsProcessed(checked);
  state.counters["writer_commits"] = static_cast<double>(commits.load());
  state.counters["wal_records"] =
      static_cast<double>(after.wal_records - before.wal_records);
  state.counters["wal_fsyncs"] =
      static_cast<double>(after.wal_fsyncs - before.wal_fsyncs);
  // The acceptance counter: snapshot readers must not inherit the
  // writer's fsync latency (compare with BENCH_concurrency.json's
  // non-durable MixedChecksOneWriter series).
  state.counters["reader_wait_ns_per_iter"] =
      iters > 0
          ? static_cast<double>(after.reader_wait_ns -
                                before.reader_wait_ns) /
                iters
          : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "=== WAL durability: commit latency & checks under a durable writer "
      "===\nCommitLatency_<mode>: one committed epoch per iteration "
      "(recolor +\nWriterGuard publish) with durability off / fsync=never "
      "/ group(128) /\nalways. Acceptance: group within 2x of baseline.\n"
      "ChecksUnderDurableWriter: %d snapshot checks per iteration while "
      "one\nclient applies with fsync=always; reader_wait_ns_per_iter ~ 0 "
      "is the\nreaders-never-pay-fsync acceptance counter.\n\n",
      256);
  benchmark::RegisterBenchmark(
      "CommitLatency_baseline",
      [](benchmark::State& s) { BM_CommitLatency(s, Mode::kBaseline); });
  benchmark::RegisterBenchmark(
      "CommitLatency_never",
      [](benchmark::State& s) { BM_CommitLatency(s, Mode::kNever); });
  benchmark::RegisterBenchmark(
      "CommitLatency_group",
      [](benchmark::State& s) { BM_CommitLatency(s, Mode::kGroup); });
  benchmark::RegisterBenchmark(
      "CommitLatency_always",
      [](benchmark::State& s) { BM_CommitLatency(s, Mode::kAlways); });
  benchmark::RegisterBenchmark("ChecksUnderDurableWriter",
                               BM_ChecksUnderDurableWriter)
      ->UseRealTime()
      ->MeasureProcessCPUTime();
  return ufilter::bench::RunWithJson(argc, argv, "wal");
}
