// Planner benchmark: interpreted (reference nested-loop interpreter) vs.
// compiled (cost-based plan + iterative executor) evaluation of the probe
// shapes that matter for U-Filter:
//
//   - TempTempJoin: two index-free temp tables equi-joined — the worst case
//     of the outside strategy's materializations. The interpreter rescans
//     the inner table per outer row (O(n*m)); the compiled plan builds a
//     one-shot hash table and probes it (O(n+m)).
//   - BaseTempJoin: the Fig. 16 shape — an indexed base table joined with
//     a small unindexed materialization (the paper's "TAB_..."). The
//     planner scans the temp table once and drives unique-index lookups
//     into the base table instead of scanning it.
//   - Prepared: the same probe through ad-hoc Execute (compile every call)
//     vs. replaying a precompiled plan (zero name resolution/planning).
//
// Emits BENCH_planner.json; tools/compare_bench.py summarizes/compares.
#include <benchmark/benchmark.h>

#include "bench_json.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "relational/planner.h"
#include "relational/query.h"
#include "relational/tpch.h"

namespace {

using ufilter::Value;
using ufilter::ValueType;
using ufilter::relational::ColRef;
using ufilter::relational::Database;
using ufilter::relational::EngineStats;
using ufilter::relational::PhysicalPlan;
using ufilter::relational::Planner;
using ufilter::relational::QueryEvaluator;
using ufilter::relational::Row;
using ufilter::relational::SelectQuery;
using ufilter::relational::TableSchema;

Database* Db() {
  static std::unique_ptr<Database> db = [] {
    ufilter::relational::tpch::TpchOptions options;
    options.scale = 1.0;
    auto made = ufilter::relational::tpch::MakeDatabase(options);
    return made.ok() ? std::move(*made) : nullptr;
  }();
  return db.get();
}

/// Creates (once) an index-free temp table `name` with one int column `k`
/// holding 0..rows-1.
void EnsureTemp(Database* db, const std::string& name, int rows) {
  if (db->IsTempTable(name)) return;
  TableSchema schema(name);
  schema.AddColumn("k", ValueType::kInt);
  (void)db->CreateTempTable(schema);
  std::vector<Row> data;
  data.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) data.push_back({Value::Int(i)});
  (void)db->BulkLoadTemp(name, std::move(data));
  db->Checkpoint();  // the fixture rows are permanent for the bench
}

void ReportWork(benchmark::State& state, Database* db) {
  const EngineStats stats = db->SnapshotWorkCounters();
  const double iters =
      static_cast<double>(std::max<int64_t>(state.iterations(), 1));
  state.counters["rows_scanned_per_iter"] =
      static_cast<double>(stats.rows_scanned) / iters;
  state.counters["index_lookups_per_iter"] =
      static_cast<double>(stats.index_lookups) / iters;
  state.counters["hash_join_builds_per_iter"] =
      static_cast<double>(stats.hash_join_builds) / iters;
  state.counters["hash_join_probes_per_iter"] =
      static_cast<double>(stats.hash_join_probes) / iters;
  state.counters["plans_compiled_per_iter"] =
      static_cast<double>(stats.plans_compiled) / iters;
  state.counters["plan_replays_per_iter"] =
      static_cast<double>(stats.plan_replays) / iters;
}

/// FROM (TAB_big, TAB_small) equi-joined on the unindexed k columns. The
/// big table leads the FROM list, so the interpreter rescans the small one
/// per big row; the planner reorders and hash-joins instead.
SelectQuery TempTempQuery(Database* db, int small_rows) {
  const int big_rows = small_rows * 4;
  EnsureTemp(db, "TAB_small_" + std::to_string(small_rows), small_rows);
  EnsureTemp(db, "TAB_big_" + std::to_string(big_rows), big_rows);
  SelectQuery q;
  q.tables = {{"TAB_big_" + std::to_string(big_rows), "b"},
              {"TAB_small_" + std::to_string(small_rows), "s"}};
  q.selects = {ColRef{"b", "k"}};
  q.joins = {{ColRef{"b", "k"}, ufilter::CompareOp::kEq, ColRef{"s", "k"}}};
  return q;
}

void BM_TempTempJoin_Interpreted(benchmark::State& state) {
  Database* db = Db();
  SelectQuery q = TempTempQuery(db, static_cast<int>(state.range(0)));
  QueryEvaluator evaluator(db);
  db->ResetWorkCounters();
  for (auto _ : state) {
    auto rows = evaluator.ExecuteReference(q, {});
    benchmark::DoNotOptimize(rows);
  }
  ReportWork(state, db);
}

void BM_TempTempJoin_Compiled(benchmark::State& state) {
  Database* db = Db();
  SelectQuery q = TempTempQuery(db, static_cast<int>(state.range(0)));
  QueryEvaluator evaluator(db);
  db->ResetWorkCounters();
  for (auto _ : state) {
    auto rows = evaluator.Execute(q);
    benchmark::DoNotOptimize(rows);
  }
  ReportWork(state, db);
}

/// The Fig. 16 shape: orders joined with a small unindexed materialization.
SelectQuery BaseTempQuery(Database* db, int temp_rows) {
  EnsureTemp(db, "TAB_probe_" + std::to_string(temp_rows), temp_rows);
  SelectQuery q;
  q.tables = {{"orders", "o"}, {"TAB_probe_" + std::to_string(temp_rows), "t"}};
  q.selects = {ColRef{"o", "o_orderkey"}};
  q.joins = {{ColRef{"o", "o_orderkey"}, ufilter::CompareOp::kEq,
              ColRef{"t", "k"}}};
  return q;
}

void BM_BaseTempJoin_Interpreted(benchmark::State& state) {
  Database* db = Db();
  SelectQuery q = BaseTempQuery(db, static_cast<int>(state.range(0)));
  QueryEvaluator evaluator(db);
  db->ResetWorkCounters();
  for (auto _ : state) {
    auto rows = evaluator.ExecuteReference(q, {});
    benchmark::DoNotOptimize(rows);
  }
  ReportWork(state, db);
}

void BM_BaseTempJoin_Compiled(benchmark::State& state) {
  Database* db = Db();
  SelectQuery q = BaseTempQuery(db, static_cast<int>(state.range(0)));
  QueryEvaluator evaluator(db);
  db->ResetWorkCounters();
  for (auto _ : state) {
    auto rows = evaluator.Execute(q);
    benchmark::DoNotOptimize(rows);
  }
  ReportWork(state, db);
}

/// Indexed three-way join (lineitem/orders/customer): compiled ad-hoc
/// Execute (planning every call) vs. replaying a precompiled plan.
SelectQuery IndexedJoinQuery() {
  SelectQuery q;
  q.tables = {{"lineitem", "l"}, {"orders", "o"}, {"customer", "c"}};
  q.selects = {ColRef{"l", "l_linenumber"}, ColRef{"c", "c_name"}};
  q.filters = {{ColRef{"o", "o_orderkey"}, ufilter::CompareOp::kEq,
                Value::Int(42)}};
  q.joins = {{ColRef{"l", "l_orderkey"}, ufilter::CompareOp::kEq,
              ColRef{"o", "o_orderkey"}},
             {ColRef{"o", "o_custkey"}, ufilter::CompareOp::kEq,
              ColRef{"c", "c_custkey"}}};
  return q;
}

void BM_IndexedJoin_Adhoc(benchmark::State& state) {
  Database* db = Db();
  SelectQuery q = IndexedJoinQuery();
  QueryEvaluator evaluator(db);
  db->ResetWorkCounters();
  for (auto _ : state) {
    auto rows = evaluator.Execute(q);
    benchmark::DoNotOptimize(rows);
  }
  ReportWork(state, db);
}

void BM_IndexedJoin_Replay(benchmark::State& state) {
  Database* db = Db();
  SelectQuery q = IndexedJoinQuery();
  Planner planner(db);
  auto plan = planner.Compile(q);
  if (!plan.ok()) {
    state.SkipWithError(plan.status().ToString().c_str());
    return;
  }
  QueryEvaluator evaluator(db);
  db->ResetWorkCounters();
  for (auto _ : state) {
    auto rows = evaluator.ExecutePlan(*plan);
    benchmark::DoNotOptimize(rows);
  }
  ReportWork(state, db);
}

/// The primitive ops under every hash join: Value::Hash and operator== over
/// a mixed int/double/string population. Both have typed fast paths (same
/// variant alternative on both sides skips the rank dispatch and std::get
/// throw checks); the (i, i+3) pairing keeps the compared Values same-typed,
/// which is the hash-join recheck's common case.
void BM_ValueHashEq(benchmark::State& state) {
  std::vector<Value> values;
  values.reserve(1024);
  for (int i = 0; i < 1024; ++i) {
    switch (i % 3) {
      case 0:
        values.push_back(Value::Int(i));
        break;
      case 1:
        values.push_back(Value::Double(i * 0.5));
        break;
      default:
        values.push_back(Value::String("key-" + std::to_string(i % 97)));
    }
  }
  size_t acc = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < values.size(); ++i) {
      acc ^= values[i].Hash();
      acc += values[i] == values[(i + 3) % values.size()] ? 1u : 0u;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}

BENCHMARK(BM_ValueHashEq);
BENCHMARK(BM_TempTempJoin_Interpreted)->Arg(256)->Arg(1024);
BENCHMARK(BM_TempTempJoin_Compiled)->Arg(256)->Arg(1024);
BENCHMARK(BM_BaseTempJoin_Interpreted)->Arg(64);
BENCHMARK(BM_BaseTempJoin_Compiled)->Arg(64);
BENCHMARK(BM_IndexedJoin_Adhoc);
BENCHMARK(BM_IndexedJoin_Replay);

}  // namespace

int main(int argc, char** argv) {
  if (Db() == nullptr) {
    std::fprintf(stderr, "failed to build TPC-H fixture\n");
    return 1;
  }
  std::printf(
      "=== Planner: interpreted vs. compiled probe evaluation ===\n"
      "TempTempJoin arg = small-side rows (big side is 4x): the compiled\n"
      "hash join turns O(n*m) rescans into one build + n probes.\n"
      "BaseTempJoin arg = temp rows over TPC-H orders (Fig. 16 shape).\n\n");
  return ufilter::bench::RunWithJson(argc, argv, "planner");
}
